// Package cachesim models a set-associative CPU cache hierarchy with LRU
// replacement. Its job in the HoPP reproduction is to turn a workload's
// raw cacheline access stream into the LLC-miss stream the memory
// controller actually sees (§II-D: "MC ... processes LLC-misses, which
// automatically reduces the access volume by filtering out those in-LLC
// accesses").
//
// The model is a timing-free hit/miss filter: the simulation engine
// charges latency itself based on which level hit.
package cachesim

import (
	"fmt"
	"math/bits"

	"hopp/internal/memsim"
)

// Config describes one cache level.
type Config struct {
	// Name is used in stats output, e.g. "L2", "LLC".
	Name string
	// SizeBytes is the total capacity. Must be a multiple of Ways*LineSize.
	SizeBytes int
	// Ways is the associativity.
	Ways int
}

// Stats counts accesses at one level.
type Stats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// HitRate returns Hits/Accesses, or 0 when idle.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// invalidTag marks an empty way. Tags are cacheline indexes shifted
// down by the set bits and are stored as uint32 — half the scan
// footprint of a 64-bit tag, which keeps a whole 16-way set of tags in
// one hardware cacheline. Access guards the range loudly: a tag at or
// above the sentinel would need a simulated address beyond 2^(32+set
// bits+6) bytes, far past anything the machines model.
const invalidTag = ^uint32(0)

// identityOrder is the nibble permutation 15,14,...,1,0 — the initial
// recency order for a 16-way set (way i at nibble i).
const identityOrder = 0xFEDCBA9876543210

// Cache is a single set-associative level.
//
// Lines live in flat parallel arrays with set s occupying indexes
// [s*ways, (s+1)*ways) of the tag array. Structure-of-arrays keeps a
// hit scan inside one or two hardware cachelines, and when the set
// count is a power of two — every realistic geometry — set selection
// and tag extraction use mask/shift instead of divisions.
//
// For associativities up to 16 (every geometry in the repo), LRU state
// is a packed recency permutation: one uint64 per set holding 4-bit way
// indexes ordered MRU (nibble 0) to LRU (nibble ways-1), plus a count
// of valid ways. The code maintains an invariant that empty ways always
// occupy the LRU end of the permutation — invalidation moves the dropped
// way there — so a miss claims its victim with one load and a rotate,
// no per-way timestamp scan: the timestamp compare chain was the single
// hottest line in the whole simulator. Wider caches fall back to
// per-way tick timestamps. Both layouts implement exactly the same
// policy: true LRU over install+hit touches, empty ways claimed before
// any eviction.
type Cache struct {
	cfg      Config
	tags     []uint32 // invalidTag = empty way
	ord      []uint64 // packed recency permutation per set (ways ≤ 16)
	valid    []uint8  // count of valid ways per set (ways ≤ 16)
	ticks    []uint64 // fallback LRU timestamps (ways > 16 only)
	ways     int
	lruShift uint
	numSets  int
	pow2     bool
	setMask  uint64
	tagShift uint
	tick     uint64
	// pages holds one pageLines record per physical page, chunked so
	// memory tracks the touched footprint rather than the highest page
	// index: the offline trace studies identity-map workload regions
	// sitting at distant VPN offsets, where a dense-by-PPN array would
	// pay for the gaps (gigabytes, at 72 B/page). A chunk covers
	// chunkPages consecutive pages and is allocated on first install in
	// its range; only the top-level pointer slice is dense.
	pages [][]pageLines
	stats Stats
}

// pageLines is a physical page's residency record at one level. bits
// marks which of the page's 64 lines are resident — install sets a
// line's bit, eviction and invalidation clear it, and tag↔line is a
// bijection within a set, so the bit mirrors residency exactly. ways
// records the way each line occupies, written at install time. A
// resident line never changes ways, so whenever its bit is set the ways
// entry is current — hits and page invalidations index the way directly
// instead of scanning the set's tags. Stale ways entries for evicted
// lines are harmless: the bit gates every read.
type pageLines struct {
	bits uint64
	ways [memsim.LinesPerPage]uint8
}

// Chunk geometry for Cache.pages: 256 pages (a 1 MB span) per chunk,
// 18 KB a chunk.
const (
	chunkShift = 8
	chunkPages = 1 << chunkShift
	chunkMask  = chunkPages - 1
)

// New builds a cache level. It panics on a malformed geometry, which is a
// programming error in experiment setup, not a runtime condition.
func New(cfg Config) *Cache {
	if cfg.Ways <= 0 {
		panic(fmt.Sprintf("cachesim: ways must be positive, got %d", cfg.Ways))
	}
	if cfg.Ways > 256 {
		panic(fmt.Sprintf("cachesim: associativity %d exceeds the 256-way limit of the per-line way records", cfg.Ways))
	}
	linesTotal := cfg.SizeBytes / memsim.LineSize
	if linesTotal <= 0 || linesTotal%cfg.Ways != 0 {
		panic(fmt.Sprintf("cachesim: size %d B with %d ways does not divide into whole sets", cfg.SizeBytes, cfg.Ways))
	}
	numSets := linesTotal / cfg.Ways
	c := &Cache{
		cfg:     cfg,
		tags:    make([]uint32, linesTotal),
		ways:    cfg.Ways,
		numSets: numSets,
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	if cfg.Ways <= 16 {
		c.ord = make([]uint64, numSets)
		c.valid = make([]uint8, numSets)
		c.lruShift = uint(4 * (cfg.Ways - 1))
		init := uint64(identityOrder)
		if cfg.Ways < 16 {
			init &= uint64(1)<<uint(4*cfg.Ways) - 1
		}
		for i := range c.ord {
			c.ord[i] = init
		}
	} else {
		c.ticks = make([]uint64, linesTotal)
	}
	if numSets&(numSets-1) == 0 {
		c.pow2 = true
		c.setMask = uint64(numSets - 1)
		c.tagShift = uint(bits.TrailingZeros64(uint64(numSets)))
	}
	return c
}

// locate splits a cacheline index into set and tag. The power-of-two
// fast path computes exactly the same values as the modulo fallback.
func (c *Cache) locate(lineIdx uint64) (set int, tag uint64) {
	if c.pow2 {
		return int(lineIdx & c.setMask), lineIdx >> c.tagShift
	}
	return int(lineIdx % uint64(c.numSets)), lineIdx / uint64(c.numSets)
}

// Stats returns a copy of the level's counters.
func (c *Cache) Stats() Stats {
	s := c.stats
	// Misses is derived rather than counted: the install path is the
	// hottest code in the simulator and every removable store matters.
	s.Misses = s.Accesses - s.Hits
	return s
}

// Name returns the level's configured name.
func (c *Cache) Name() string { return c.cfg.Name }

// Access touches the cacheline containing addr and reports whether it
// hit. On a miss the line is installed, evicting the set's LRU victim.
//
//hopplint:hotpath
func (c *Cache) Access(addr memsim.PAddr) bool {
	line := addr.Line()
	set, tag64 := c.locate(line)
	if tag64 >= uint64(invalidTag) {
		panic("cachesim: line address beyond the 32-bit tag range")
	}
	tag := uint32(tag64)
	c.stats.Accesses++
	if c.ticks != nil {
		return c.accessWide(set, tag)
	}

	// The page record mirrors residency exactly, so one bit test decides
	// hit/miss and the recorded way replaces any tag scan: misses — the
	// regime the whole simulator exists to model — and hits alike touch
	// only the line's own set entry.
	pg := line >> (memsim.PageShift - memsim.LineShift)
	li := line & (memsim.LinesPerPage - 1)
	bit := uint64(1) << li
	var pl *pageLines
	if ci := pg >> chunkShift; ci < uint64(len(c.pages)) && c.pages[ci] != nil {
		pl = &c.pages[ci][pg&chunkMask]
	} else {
		pl = c.pageRecSlow(pg)
	}
	if pl.bits&bit == 0 {
		// The LRU-most way is the victim either way: empty ways live at
		// the LRU end of the permutation, so when the set is not full the
		// rotate claims an empty way, never evicting live data early.
		base := set * c.ways
		tags := c.tags[base : base+c.ways]
		o := c.ord[set]
		w := int(o >> c.lruShift)
		c.ord[set] = (o&(uint64(1)<<c.lruShift-1))<<4 | uint64(w)
		if int(c.valid[set]) == c.ways {
			c.stats.Evictions++
			// The victim's page record exists (its line was installed
			// through this very path), so clear the bit directly.
			el := c.lineOf(tags[w], set)
			epg := el >> (memsim.PageShift - memsim.LineShift)
			c.pages[epg>>chunkShift][epg&chunkMask].bits &^= uint64(1) << (el & (memsim.LinesPerPage - 1))
		} else {
			c.valid[set]++
		}
		tags[w] = tag
		pl.bits |= bit
		pl.ways[li] = uint8(w)
		return false
	}
	w := int(pl.ways[li])
	if c.tags[set*c.ways+w] != tag {
		panic("cachesim: page record marks a line resident but its recorded way holds another tag")
	}
	c.stats.Hits++
	c.touch(set, w)
	return true
}

// lineOf reconstructs the full cacheline index from a stored tag and
// its set — the inverse of locate.
func (c *Cache) lineOf(tag uint32, set int) uint64 {
	if c.pow2 {
		return uint64(tag)<<c.tagShift | uint64(set)
	}
	return uint64(tag)*uint64(c.numSets) + uint64(set)
}

// pageRecSlow is the cold path of the page-record lookup: grow the
// top-level pointer slice and/or allocate the page's chunk, then return
// the record. Access inlines the common both-present case and calls
// here only on a page range's first touch.
func (c *Cache) pageRecSlow(pg uint64) *pageLines {
	ci := pg >> chunkShift
	if ci >= uint64(len(c.pages)) {
		//hopplint:allocok cold path: top-level chunk index grows once per new VPN region, never in steady state
		grown := make([][]pageLines, ci+1+ci/2)
		copy(grown, c.pages)
		c.pages = grown
	}
	if c.pages[ci] == nil {
		//hopplint:allocok cold path: one chunk per 256 pages on first touch; the steady state hits the inlined fast path
		c.pages[ci] = make([]pageLines, chunkPages)
	}
	return &c.pages[ci][pg&chunkMask]
}

// nibbleBroadcast spreads one nibble to all sixteen positions.
const nibbleBroadcast = 0x1111111111111111

// nibblePos returns 4·p where p is the position of the (unique) nibble
// of o equal to w, via a zero-nibble SWAR scan: the lowest zero nibble
// of o^(w·0x11…1) is found exactly by the borrow trick.
func nibblePos(o uint64, w int) uint {
	x := o ^ uint64(w)*nibbleBroadcast
	m := (x - nibbleBroadcast) &^ x & (nibbleBroadcast << 3)
	return uint(bits.TrailingZeros64(m)) &^ 3
}

// touch moves way w to the MRU end of set's recency permutation.
func (c *Cache) touch(set, w int) {
	o := c.ord[set]
	p := nibblePos(o, w)
	low := o & (uint64(1)<<p - 1)
	c.ord[set] = o&^(uint64(1)<<(p+4)-1) | low<<4 | uint64(w)
}

// demote moves way w to the LRU end of set's recency permutation,
// keeping freshly-invalidated ways in the empty-suffix region that
// Access claims victims from.
func (c *Cache) demote(set, w int) {
	o := c.ord[set]
	p := nibblePos(o, w)
	low := o & (uint64(1)<<p - 1)
	high := o >> (p + 4)
	c.ord[set] = low | high<<p | uint64(w)<<c.lruShift
}

// accessWide is the ways>16 fallback using per-way timestamps.
func (c *Cache) accessWide(set int, tag uint32) bool {
	c.tick++
	base := set * c.ways
	tags := c.tags[base : base+c.ways]
	ticks := c.ticks[base : base+c.ways]
	victim, victimValid := 0, true
	for i := range tags {
		if tags[i] == tag {
			ticks[i] = c.tick
			c.stats.Hits++
			return true
		}
		if tags[i] == invalidTag {
			victim, victimValid = i, false
		} else if victimValid && ticks[i] < ticks[victim] {
			victim = i
		}
	}
	if tags[victim] != invalidTag {
		c.stats.Evictions++
		el := c.lineOf(tags[victim], set)
		epl := c.pageRecSlow(el >> (memsim.PageShift - memsim.LineShift))
		epl.bits &^= uint64(1) << (el & (memsim.LinesPerPage - 1))
	}
	tags[victim] = tag
	ticks[victim] = c.tick
	line := c.lineOf(tag, set)
	pl := c.pageRecSlow(line >> (memsim.PageShift - memsim.LineShift))
	pl.bits |= uint64(1) << (line & (memsim.LinesPerPage - 1))
	pl.ways[line&(memsim.LinesPerPage-1)] = uint8(victim)
	return false
}

// Probe reports whether the cacheline containing addr is present,
// without touching LRU state, stats, or installing anything. It is the
// read-only counterpart of Access.
func (c *Cache) Probe(addr memsim.PAddr) bool {
	line := addr.Line()
	pg := line >> (memsim.PageShift - memsim.LineShift)
	ci := pg >> chunkShift
	if ci >= uint64(len(c.pages)) || c.pages[ci] == nil {
		return false
	}
	return c.pages[ci][pg&chunkMask].bits&(uint64(1)<<(line&(memsim.LinesPerPage-1))) != 0
}

// InvalidatePage drops every line of the given physical page, as happens
// when the kernel reclaims the page. Returns how many lines were dropped.
func (c *Cache) InvalidatePage(p memsim.PPN) int {
	pg := uint64(p)
	ci := pg >> chunkShift
	if ci >= uint64(len(c.pages)) || c.pages[ci] == nil {
		return 0
	}
	pl := &c.pages[ci][pg&chunkMask]
	if pl.bits == 0 {
		return 0
	}
	resident := pl.bits
	pl.bits = 0
	dropped := 0
	line0 := p.LineAddr(0).Line()
	if c.pow2 && c.numSets >= memsim.LinesPerPage {
		// A page's lines land in LinesPerPage consecutive sets (the page
		// start is set-aligned) and share one tag, so each resident line
		// maps straight to its set with no per-line locate; the recorded
		// way pinpoints it without a tag scan.
		set0 := int(line0 & c.setMask)
		tag := uint32(line0 >> c.tagShift)
		for rem := resident; rem != 0; rem &= rem - 1 {
			i := bits.TrailingZeros64(rem)
			set := set0 + i
			base := set * c.ways
			j := int(pl.ways[i])
			if c.tags[base+j] != tag {
				panic("cachesim: page record marks a line resident but its recorded way holds another tag")
			}
			c.drop(set, base, j)
			dropped++
		}
		return dropped
	}
	for rem := resident; rem != 0; rem &= rem - 1 {
		i := bits.TrailingZeros64(rem)
		line := line0 + uint64(i)
		set, tag64 := c.locate(line)
		base := set * c.ways
		j := int(pl.ways[i])
		if c.tags[base+j] != uint32(tag64) {
			panic("cachesim: page record marks a line resident but its recorded way holds another tag")
		}
		c.drop(set, base, j)
		dropped++
	}
	return dropped
}

// drop invalidates way j of set (flat base index base).
func (c *Cache) drop(set, base, j int) {
	c.tags[base+j] = invalidTag
	if c.ord != nil {
		c.valid[set]--
		c.demote(set, j)
	}
}

// Level identifies which part of the hierarchy satisfied an access.
type Level int

// Hierarchy levels, ordered from closest to the core outward.
const (
	LevelL2 Level = iota
	LevelLLC
	LevelMemory
)

func (l Level) String() string {
	switch l {
	case LevelL2:
		return "L2"
	case LevelLLC:
		return "LLC"
	default:
		return "memory"
	}
}

// Hierarchy chains cache levels; an access that misses every level
// reaches memory (and therefore the memory controller).
type Hierarchy struct {
	levels []*Cache
	// l2/llc are set for the ubiquitous one- and two-level shapes so
	// Access dispatches straight to the caches without the slice walk.
	l2  *Cache
	llc *Cache
}

// NewHierarchy builds a hierarchy from inner to outer levels.
func NewHierarchy(levels ...*Cache) *Hierarchy {
	h := &Hierarchy{levels: levels}
	switch len(levels) {
	case 1:
		h.llc = levels[0]
	case 2:
		h.l2, h.llc = levels[0], levels[1]
	}
	return h
}

// DefaultHierarchy models the testbed's per-workload share of a server
// class cache: a 1 MB 16-way L2 in front of a 16 MB 16-way LLC. Sized so
// working sets larger than tens of MBs stream through to memory, as on
// the paper's 14-core Xeons.
func DefaultHierarchy() *Hierarchy {
	return NewHierarchy(
		New(Config{Name: "L2", SizeBytes: 1 << 20, Ways: 16}),
		New(Config{Name: "LLC", SizeBytes: 16 << 20, Ways: 16}),
	)
}

// Access walks the hierarchy. It returns the level that satisfied the
// access; LevelMemory means an LLC miss that the MC will observe. The
// outermost level always reports as LevelLLC, so a single-level hierarchy
// behaves as a bare LLC. Missed levels install the line (inclusive
// hierarchy).
//
//hopplint:hotpath
func (h *Hierarchy) Access(addr memsim.PAddr) Level {
	if h.llc != nil {
		if h.l2 != nil && h.l2.Access(addr) {
			return LevelL2
		}
		if h.llc.Access(addr) {
			return LevelLLC
		}
		return LevelMemory
	}
	for i, c := range h.levels {
		if c.Access(addr) {
			if i == len(h.levels)-1 {
				return LevelLLC
			}
			return LevelL2
		}
	}
	return LevelMemory
}

// MissesLLC reports whether the access would reach memory, without
// recording hits, refreshing LRU state, or installing lines anywhere in
// the hierarchy. Used by tests.
func (h *Hierarchy) MissesLLC(addr memsim.PAddr) bool {
	for _, c := range h.levels {
		if c.Probe(addr) {
			return false
		}
	}
	return true
}

// InvalidatePage drops the page's lines from every level.
func (h *Hierarchy) InvalidatePage(p memsim.PPN) {
	for _, c := range h.levels {
		c.InvalidatePage(p)
	}
}

// LevelStats returns per-level stats, innermost first.
func (h *Hierarchy) LevelStats() []Stats {
	out := make([]Stats, len(h.levels))
	for i, c := range h.levels {
		out[i] = c.Stats()
	}
	return out
}

// LLC returns the outermost level.
func (h *Hierarchy) LLC() *Cache { return h.levels[len(h.levels)-1] }
