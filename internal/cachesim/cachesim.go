// Package cachesim models a set-associative CPU cache hierarchy with LRU
// replacement. Its job in the HoPP reproduction is to turn a workload's
// raw cacheline access stream into the LLC-miss stream the memory
// controller actually sees (§II-D: "MC ... processes LLC-misses, which
// automatically reduces the access volume by filtering out those in-LLC
// accesses").
//
// The model is a timing-free hit/miss filter: the simulation engine
// charges latency itself based on which level hit.
package cachesim

import (
	"fmt"

	"hopp/internal/memsim"
)

// Config describes one cache level.
type Config struct {
	// Name is used in stats output, e.g. "L2", "LLC".
	Name string
	// SizeBytes is the total capacity. Must be a multiple of Ways*LineSize.
	SizeBytes int
	// Ways is the associativity.
	Ways int
}

// Stats counts accesses at one level.
type Stats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// HitRate returns Hits/Accesses, or 0 when idle.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

type line struct {
	tag   uint64
	valid bool
	tick  uint64 // LRU timestamp; larger = more recent
}

// Cache is a single set-associative level.
type Cache struct {
	cfg     Config
	sets    [][]line
	numSets int
	tick    uint64
	stats   Stats
}

// New builds a cache level. It panics on a malformed geometry, which is a
// programming error in experiment setup, not a runtime condition.
func New(cfg Config) *Cache {
	if cfg.Ways <= 0 {
		panic(fmt.Sprintf("cachesim: ways must be positive, got %d", cfg.Ways))
	}
	linesTotal := cfg.SizeBytes / memsim.LineSize
	if linesTotal <= 0 || linesTotal%cfg.Ways != 0 {
		panic(fmt.Sprintf("cachesim: size %d B with %d ways does not divide into whole sets", cfg.SizeBytes, cfg.Ways))
	}
	numSets := linesTotal / cfg.Ways
	sets := make([][]line, numSets)
	backing := make([]line, linesTotal)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	return &Cache{cfg: cfg, sets: sets, numSets: numSets}
}

// Stats returns a copy of the level's counters.
func (c *Cache) Stats() Stats { return c.stats }

// Name returns the level's configured name.
func (c *Cache) Name() string { return c.cfg.Name }

// Access touches the cacheline containing addr and reports whether it
// hit. On a miss the line is installed, evicting the set's LRU victim.
func (c *Cache) Access(addr memsim.PAddr) bool {
	lineIdx := addr.Line()
	set := int(lineIdx % uint64(c.numSets))
	tag := lineIdx / uint64(c.numSets)
	c.tick++
	c.stats.Accesses++

	ways := c.sets[set]
	victim := 0
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].tick = c.tick
			c.stats.Hits++
			return true
		}
		if !ways[i].valid {
			victim = i
		} else if ways[victim].valid && ways[i].tick < ways[victim].tick {
			victim = i
		}
	}
	c.stats.Misses++
	if ways[victim].valid {
		c.stats.Evictions++
	}
	ways[victim] = line{tag: tag, valid: true, tick: c.tick}
	return false
}

// InvalidatePage drops every line of the given physical page, as happens
// when the kernel reclaims the page. Returns how many lines were dropped.
func (c *Cache) InvalidatePage(p memsim.PPN) int {
	dropped := 0
	for i := 0; i < memsim.LinesPerPage; i++ {
		lineIdx := p.LineAddr(i).Line()
		set := int(lineIdx % uint64(c.numSets))
		tag := lineIdx / uint64(c.numSets)
		ways := c.sets[set]
		for j := range ways {
			if ways[j].valid && ways[j].tag == tag {
				ways[j].valid = false
				dropped++
				break
			}
		}
	}
	return dropped
}

// Level identifies which part of the hierarchy satisfied an access.
type Level int

// Hierarchy levels, ordered from closest to the core outward.
const (
	LevelL2 Level = iota
	LevelLLC
	LevelMemory
)

func (l Level) String() string {
	switch l {
	case LevelL2:
		return "L2"
	case LevelLLC:
		return "LLC"
	default:
		return "memory"
	}
}

// Hierarchy chains cache levels; an access that misses every level
// reaches memory (and therefore the memory controller).
type Hierarchy struct {
	levels []*Cache
}

// NewHierarchy builds a hierarchy from inner to outer levels.
func NewHierarchy(levels ...*Cache) *Hierarchy {
	return &Hierarchy{levels: levels}
}

// DefaultHierarchy models the testbed's per-workload share of a server
// class cache: a 1 MB 16-way L2 in front of a 16 MB 16-way LLC. Sized so
// working sets larger than tens of MBs stream through to memory, as on
// the paper's 14-core Xeons.
func DefaultHierarchy() *Hierarchy {
	return NewHierarchy(
		New(Config{Name: "L2", SizeBytes: 1 << 20, Ways: 16}),
		New(Config{Name: "LLC", SizeBytes: 16 << 20, Ways: 16}),
	)
}

// Access walks the hierarchy. It returns the level that satisfied the
// access; LevelMemory means an LLC miss that the MC will observe. The
// outermost level always reports as LevelLLC, so a single-level hierarchy
// behaves as a bare LLC. Missed levels install the line (inclusive
// hierarchy).
func (h *Hierarchy) Access(addr memsim.PAddr) Level {
	for i, c := range h.levels {
		if c.Access(addr) {
			if i == len(h.levels)-1 {
				return LevelLLC
			}
			return LevelL2
		}
	}
	return LevelMemory
}

// MissesLLC reports whether the access would reach memory, without
// actually recording hits at inner levels. Used by tests.
func (h *Hierarchy) MissesLLC(addr memsim.PAddr) bool {
	return h.Access(addr) == LevelMemory
}

// InvalidatePage drops the page's lines from every level.
func (h *Hierarchy) InvalidatePage(p memsim.PPN) {
	for _, c := range h.levels {
		c.InvalidatePage(p)
	}
}

// LevelStats returns per-level stats, innermost first.
func (h *Hierarchy) LevelStats() []Stats {
	out := make([]Stats, len(h.levels))
	for i, c := range h.levels {
		out[i] = c.Stats()
	}
	return out
}

// LLC returns the outermost level.
func (h *Hierarchy) LLC() *Cache { return h.levels[len(h.levels)-1] }
