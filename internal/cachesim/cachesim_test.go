package cachesim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hopp/internal/memsim"
)

func tiny() *Cache {
	// 4 sets x 2 ways x 64 B lines = 512 B.
	return New(Config{Name: "T", SizeBytes: 512, Ways: 2})
}

func TestMissThenHit(t *testing.T) {
	c := tiny()
	if c.Access(0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0) {
		t.Fatal("second access missed")
	}
	if !c.Access(63) {
		t.Fatal("same-line access missed")
	}
	if c.Access(64) {
		t.Fatal("next line should miss")
	}
	s := c.Stats()
	if s.Accesses != 4 || s.Hits != 2 || s.Misses != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := tiny() // 4 sets, 2 ways
	// Set index = lineIdx % 4, so lines 0, 4, 8 all land in set 0.
	l0 := memsim.PAddr(0 * 64)
	l4 := memsim.PAddr(4 * 64)
	l8 := memsim.PAddr(8 * 64)
	c.Access(l0)
	c.Access(l4)
	c.Access(l0) // make l4 the LRU
	c.Access(l8) // evicts l4
	if !c.Access(l0) {
		t.Fatal("l0 should still be cached")
	}
	if c.Access(l4) {
		t.Fatal("l4 should have been evicted")
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
}

func TestInvalidatePage(t *testing.T) {
	c := New(Config{Name: "T", SizeBytes: 64 << 10, Ways: 16})
	p := memsim.PPN(3)
	for i := 0; i < memsim.LinesPerPage; i++ {
		c.Access(p.LineAddr(i))
	}
	dropped := c.InvalidatePage(p)
	if dropped != memsim.LinesPerPage {
		t.Fatalf("dropped %d lines, want %d", dropped, memsim.LinesPerPage)
	}
	if c.Access(p.LineAddr(0)) {
		t.Fatal("line survived invalidation")
	}
	if n := c.InvalidatePage(memsim.PPN(99)); n != 0 {
		t.Fatalf("invalidating absent page dropped %d lines", n)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-divisible geometry")
		}
	}()
	New(Config{SizeBytes: 100, Ways: 3})
}

func TestHierarchyLevels(t *testing.T) {
	h := NewHierarchy(
		New(Config{Name: "L2", SizeBytes: 512, Ways: 2}),
		New(Config{Name: "LLC", SizeBytes: 4096, Ways: 4}),
	)
	if lvl := h.Access(0); lvl != LevelMemory {
		t.Fatalf("cold access got %v, want memory", lvl)
	}
	if lvl := h.Access(0); lvl != LevelL2 {
		t.Fatalf("warm access got %v, want L2", lvl)
	}
	// Thrash L2 set 0 (2 ways, 4 sets: lines 0,4,8,12 collide) so line 0
	// falls out of L2 but stays in the larger LLC.
	for _, l := range []uint64{4, 8, 12} {
		h.Access(memsim.PAddr(l * 64))
	}
	if lvl := h.Access(0); lvl != LevelLLC {
		t.Fatalf("got %v, want LLC after L2 eviction", lvl)
	}
}

func TestSingleLevelHierarchyReportsLLC(t *testing.T) {
	h := NewHierarchy(New(Config{Name: "only", SizeBytes: 4096, Ways: 4}))
	h.Access(0)
	if lvl := h.Access(0); lvl != LevelLLC {
		t.Fatalf("got %v, want LLC", lvl)
	}
}

func TestWorkingSetFitsNoSteadyStateMisses(t *testing.T) {
	// A working set smaller than the cache must stop missing after warmup.
	c := New(Config{Name: "T", SizeBytes: 64 << 10, Ways: 16})
	lines := (64 << 10) / memsim.LineSize / 2 // half capacity
	warm := func() {
		for i := 0; i < lines; i++ {
			c.Access(memsim.PAddr(uint64(i) * 64))
		}
	}
	warm()
	before := c.Stats().Misses
	warm()
	if after := c.Stats().Misses; after != before {
		t.Fatalf("steady-state misses: %d new misses on resident working set", after-before)
	}
}

func TestStreamingMissesEveryLine(t *testing.T) {
	// A working set far larger than the cache must miss ~once per line.
	c := New(Config{Name: "T", SizeBytes: 4 << 10, Ways: 4})
	n := 10000
	for i := 0; i < n; i++ {
		c.Access(memsim.PAddr(uint64(i) * 64))
	}
	if m := c.Stats().Misses; m != uint64(n) {
		t.Fatalf("streaming misses = %d, want %d", m, n)
	}
}

func TestDefaultHierarchy(t *testing.T) {
	h := DefaultHierarchy()
	if h.LLC().Name() != "LLC" {
		t.Fatalf("outermost level = %q", h.LLC().Name())
	}
	if got := len(h.LevelStats()); got != 2 {
		t.Fatalf("levels = %d, want 2", got)
	}
}

// Property: hits+misses == accesses, and a repeat of the immediately
// preceding access always hits.
func TestAccountingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(Config{Name: "T", SizeBytes: 8 << 10, Ways: 8})
		for i := 0; i < 500; i++ {
			addr := memsim.PAddr(rng.Uint64() % (1 << 24))
			c.Access(addr)
			if !c.Access(addr) {
				return false // immediate re-access must hit
			}
		}
		s := c.Stats()
		return s.Hits+s.Misses == s.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c := New(Config{Name: "LLC", SizeBytes: 16 << 20, Ways: 16})
	rng := rand.New(rand.NewSource(1))
	addrs := make([]memsim.PAddr, 4096)
	for i := range addrs {
		addrs[i] = memsim.PAddr(rng.Uint64() % (1 << 30))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i%len(addrs)])
	}
}

// TestMissesLLCIsReadOnly drives two identical hierarchies through the
// same randomized stream; one is additionally probed with MissesLLC
// before every access (plus a burst of repeat probes). The probe must
// (a) predict exactly what Access then observes and (b) leave no trace:
// both hierarchies must end bit-for-bit equal in stats, and repeated
// probes must agree with themselves.
func TestMissesLLCIsReadOnly(t *testing.T) {
	build := func() *Hierarchy {
		return NewHierarchy(
			New(Config{Name: "L2", SizeBytes: 2 << 10, Ways: 2}),
			New(Config{Name: "LLC", SizeBytes: 8 << 10, Ways: 4}),
		)
	}
	probed, clean := build(), build()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50000; i++ {
		// A few dozen pages with reuse so all of hit, miss, and eviction
		// paths run; page-sized invalidations mixed in.
		addr := memsim.PAddr(uint64(rng.Intn(48))<<memsim.PageShift |
			uint64(rng.Intn(memsim.LinesPerPage))<<memsim.LineShift)
		if rng.Intn(512) == 0 {
			p := addr.Page()
			probed.InvalidatePage(p)
			clean.InvalidatePage(p)
		}
		miss := probed.MissesLLC(addr)
		if again := probed.MissesLLC(addr); again != miss {
			t.Fatalf("access %d: repeated MissesLLC(%#x) flipped %v -> %v", i, addr, miss, again)
		}
		level := probed.Access(addr)
		if miss != (level == LevelMemory) {
			t.Fatalf("access %d: MissesLLC(%#x) = %v but Access reached %v", i, addr, miss, level)
		}
		if cleanLevel := clean.Access(addr); cleanLevel != level {
			t.Fatalf("access %d: probed hierarchy diverged: %v vs %v", i, level, cleanLevel)
		}
	}
	for lvl, ps := range probed.LevelStats() {
		if cs := clean.LevelStats()[lvl]; ps != cs {
			t.Fatalf("level %d stats diverged under probing: %+v vs %+v", lvl, ps, cs)
		}
	}
}
