package core

import (
	"testing"

	"hopp/internal/memsim"
	"hopp/internal/vclock"
	"hopp/internal/vmm"
)

func bulkParams(streamLen, pages int) Params {
	p := DefaultParams()
	p.Bulk = BulkParams{Enable: true, StreamLength: streamLen, Pages: pages, MinRemoteFrac: 0.9}
	return p
}

func TestBulkPredictionAfterStreak(t *testing.T) {
	tr := NewTrainer(bulkParams(4, 16))
	var bulk *Prediction
	for i := 0; i < 40 && bulk == nil; i++ {
		if pred, ok := tr.Observe(vclock.Time(i)*1000, 1, memsim.VPN(100+i)); ok && pred.Bulk {
			bulk = &pred
		}
	}
	if bulk == nil {
		t.Fatal("no bulk prediction on a long stride-1 stream")
	}
	if len(bulk.Pages) != 16 {
		t.Fatalf("bulk window = %d pages, want 16", len(bulk.Pages))
	}
	for i := 1; i < len(bulk.Pages); i++ {
		if bulk.Pages[i] != bulk.Pages[i-1]+1 {
			t.Fatal("bulk window not consecutive")
		}
	}
	if tr.Stats().BulkPredictions == 0 {
		t.Fatal("bulk prediction not counted")
	}
}

func TestBulkFenceBlocksRepeats(t *testing.T) {
	tr := NewTrainer(bulkParams(4, 64))
	bulks := 0
	for i := 0; i < 40; i++ {
		if pred, ok := tr.Observe(vclock.Time(i)*1000, 1, memsim.VPN(100+i)); ok && pred.Bulk {
			bulks++
		}
	}
	// 40 pages of stream progress inside a 64-page window: one bulk only.
	if bulks != 1 {
		t.Fatalf("bulks = %d, want 1 (fence must hold until window consumed)", bulks)
	}
}

func TestBulkDisabledByDefault(t *testing.T) {
	tr := NewTrainer(DefaultParams())
	for i := 0; i < 200; i++ {
		if pred, ok := tr.Observe(vclock.Time(i)*1000, 1, memsim.VPN(100+i)); ok && pred.Bulk {
			t.Fatal("bulk prediction with Bulk.Enable=false")
		}
	}
}

func TestBulkRequiresUnitStride(t *testing.T) {
	tr := NewTrainer(bulkParams(2, 16))
	for i := 0; i < 60; i++ {
		if pred, ok := tr.Observe(vclock.Time(i)*1000, 1, memsim.VPN(100+i*4)); ok && pred.Bulk {
			t.Fatal("bulk prediction on a stride-4 stream")
		}
	}
}

func TestBulkDescendingStream(t *testing.T) {
	tr := NewTrainer(bulkParams(4, 16))
	found := false
	for i := 0; i < 40 && !found; i++ {
		if pred, ok := tr.Observe(vclock.Time(i)*1000, 1, memsim.VPN(100000-i)); ok && pred.Bulk {
			found = true
			for j := 1; j < len(pred.Pages); j++ {
				if pred.Pages[j] != pred.Pages[j-1]-1 {
					t.Fatal("descending bulk window not consecutive downward")
				}
			}
		}
	}
	if !found {
		t.Fatal("no bulk prediction on a descending stream")
	}
}

func TestExecutorBulkSingleTransfer(t *testing.T) {
	b := newFakeBackend()
	tr := NewTrainer(bulkParams(4, 16))
	x := NewExecutor(b, tr, tr.Params())
	pred := Prediction{
		Stream: StreamRef{Index: 0, Gen: 1}, Tier: TierSSP, PID: 1, Bulk: true,
		Pages: seqVPNs(100, 1, 16),
	}
	x.Submit(0, pred)
	if b.bulkCalls != 1 {
		t.Fatalf("bulk calls = %d, want 1", b.bulkCalls)
	}
	s := x.Stats()
	if s.BulkRequests != 1 || s.Issued != 16 {
		t.Fatalf("stats = %+v", s)
	}
	// Land and hit every page.
	for _, v := range pred.Pages {
		k := memsim.PageKey{PID: 1, VPN: v}
		b.land(k, 4000)
		x.OnFirstHit(k, 9000)
	}
	if x.Stats().Hits != 16 {
		t.Fatalf("hits = %d", x.Stats().Hits)
	}
}

func TestExecutorBulkFallsBackWhenMostlyResident(t *testing.T) {
	b := newFakeBackend()
	tr := NewTrainer(bulkParams(4, 16))
	x := NewExecutor(b, tr, tr.Params())
	pages := seqVPNs(100, 1, 16)
	// 15 of 16 already mapped: below MinRemoteFrac.
	for _, v := range pages[:15] {
		b.states[memsim.PageKey{PID: 1, VPN: v}] = vmm.Mapped
	}
	x.Submit(0, Prediction{Stream: StreamRef{Index: 0, Gen: 1}, Tier: TierSSP, PID: 1, Bulk: true, Pages: pages})
	if b.bulkCalls != 0 {
		t.Fatal("bulk issued despite resident window")
	}
	if x.Stats().Issued != 1 {
		t.Fatalf("fallback should fetch the one remote page, issued = %d", x.Stats().Issued)
	}
}
