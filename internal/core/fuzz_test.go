package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hopp/internal/memsim"
	"hopp/internal/vclock"
)

// Property: the trainer never panics and never predicts out-of-range
// pages, no matter how adversarial the hot page stream — including VPNs
// at the bottom and top of the address space and random PIDs.
func TestTrainerRobustnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		params := DefaultParams()
		params.Policy.Intensity = rng.Intn(4) + 1
		if rng.Intn(2) == 0 {
			params.Bulk = BulkParams{Enable: true, StreamLength: rng.Intn(8) + 2, Pages: rng.Intn(64) + 8}
		}
		tr := NewTrainer(params)
		for i := 0; i < 2000; i++ {
			var vpn memsim.VPN
			switch rng.Intn(4) {
			case 0: // near zero
				vpn = memsim.VPN(rng.Intn(20))
			case 1: // near the 40-bit top
				vpn = memsim.MaxVPN - memsim.VPN(rng.Intn(20))
			case 2: // random walk
				vpn = memsim.VPN(rng.Intn(1 << 20))
			default: // streaming
				vpn = memsim.VPN(1000 + i)
			}
			pid := memsim.PID(rng.Intn(4))
			pred, ok := tr.Observe(vclock.Time(i)*100, pid, vpn)
			if !ok {
				continue
			}
			if len(pred.Pages) == 0 {
				return false
			}
			for _, p := range pred.Pages {
				if p == 0 || p > memsim.MaxVPN {
					return false
				}
			}
			if pred.PID != pid {
				return false
			}
			// Random feedback, including stale refs.
			tr.Feedback(pred.Stream, vclock.Duration(rng.Int63n(int64(10*vclock.Millisecond))))
			tr.Feedback(StreamRef{Index: rng.Intn(128) - 32, Gen: uint64(rng.Intn(100))}, 0)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: the Markov predictor has the same robustness guarantees.
func TestMarkovRobustnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMarkov(DefaultParams())
		for i := 0; i < 2000; i++ {
			vpn := memsim.VPN(rng.Int63n(int64(memsim.MaxVPN)) + 1)
			if rng.Intn(2) == 0 {
				vpn = memsim.VPN(5000 + i%97) // reuse-heavy
			}
			pred, ok := m.Observe(vclock.Time(i)*100, memsim.PID(rng.Intn(3)), vpn)
			if !ok {
				continue
			}
			for _, p := range pred.Pages {
				if p == 0 || p > memsim.MaxVPN {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: offsets always stay within [1, MaxOffset] under arbitrary
// feedback sequences.
func TestOffsetBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewTrainer(DefaultParams())
		preds := feed(tr, 1, seqVPNs(0, 1, 17))
		if len(preds) == 0 {
			return false
		}
		ref := preds[0].Stream
		for i := 0; i < 500; i++ {
			tr.Feedback(ref, vclock.Duration(rng.Int63n(int64(20*vclock.Millisecond))))
			o, ok := tr.OffsetOf(ref)
			if !ok || o < 1 || o > tr.Params().Policy.MaxOffset {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: executor accounting identities hold under arbitrary
// interleavings of submit/land/hit/evict.
func TestExecutorAccountingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := newFakeBackend()
		tr := NewTrainer(DefaultParams())
		x := NewExecutor(b, tr, tr.Params())
		live := map[memsim.PageKey]bool{}
		for i := 0; i < 1000; i++ {
			key := memsim.PageKey{PID: 1, VPN: memsim.VPN(rng.Intn(256) + 1)}
			switch rng.Intn(4) {
			case 0:
				x.Submit(0, predFor(1, Tier(rng.Intn(3)+1), key.VPN))
				live[key] = true
			case 1:
				b.land(key, vclock.Time(i)*100)
			case 2:
				x.OnFirstHit(key, vclock.Time(i)*100)
			case 3:
				x.OnEvicted(key)
			}
			s := x.Stats()
			if s.Hits+s.LateHits > s.Issued+s.InjectedInPlace {
				return false
			}
			if s.Evicted > s.Arrived {
				return false
			}
			if a := s.Accuracy(); a < 0 || a > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
