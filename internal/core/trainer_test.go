package core

import (
	"testing"

	"hopp/internal/memsim"
	"hopp/internal/vclock"
)

// feed pushes a VPN sequence for one PID through the trainer, returning
// every prediction made.
func feed(t *Trainer, pid memsim.PID, seq []memsim.VPN) []Prediction {
	var preds []Prediction
	for i, v := range seq {
		if p, ok := t.Observe(vclock.Time(i*1000), pid, v); ok {
			// Pages aliases the trainer's scratch; copy before retaining.
			p.Pages = append([]memsim.VPN(nil), p.Pages...)
			preds = append(preds, p)
		}
	}
	return preds
}

func seqVPNs(start, stride int64, n int) []memsim.VPN {
	out := make([]memsim.VPN, n)
	for i := range out {
		out[i] = memsim.VPN(start + int64(i)*stride)
	}
	return out
}

func TestSimpleStreamPrediction(t *testing.T) {
	tr := NewTrainer(DefaultParams())
	preds := feed(tr, 1, seqVPNs(100, 2, 20))
	if len(preds) == 0 {
		t.Fatal("no predictions for a clean stride-2 stream")
	}
	p := preds[0]
	if p.Tier != TierSSP {
		t.Fatalf("tier = %v, want SSP", p.Tier)
	}
	// First prediction happens on the 17th page (history full at 16):
	// VPN_A = 100+16·2 = 132; offset 1 ⇒ predict 134.
	if len(p.Pages) != 1 || p.Pages[0] != 134 {
		t.Fatalf("pages = %v, want [134]", p.Pages)
	}
	if tr.Stats().Predictions[TierSSP] == 0 {
		t.Fatal("SSP prediction not counted")
	}
}

func TestHistoryMustFillBeforePredicting(t *testing.T) {
	tr := NewTrainer(DefaultParams())
	preds := feed(tr, 1, seqVPNs(0, 1, 16))
	if len(preds) != 0 {
		t.Fatalf("%d predictions before VPN_history was full", len(preds))
	}
	if p, ok := tr.Observe(0, 1, 16); !ok || p.Tier != TierSSP {
		t.Fatal("17th page should predict")
	}
}

func TestPIDSeparation(t *testing.T) {
	tr := NewTrainer(DefaultParams())
	// Two processes walk the same VPNs; streams must not merge.
	a := seqVPNs(0, 1, 18)
	for i := range a {
		tr.Observe(0, 1, a[i])
		tr.Observe(0, 2, a[i])
	}
	if tr.LiveStreams() != 2 {
		t.Fatalf("LiveStreams = %d, want 2", tr.LiveStreams())
	}
}

func TestPageClusteringSeparatesDistantStreams(t *testing.T) {
	tr := NewTrainer(DefaultParams())
	// Two interleaved streams >64 pages apart, same PID: the Δ_stream
	// clustering must keep them in separate entries and both must train.
	var preds []Prediction
	for i := 0; i < 20; i++ {
		if p, ok := tr.Observe(0, 1, memsim.VPN(1000+i*2)); ok {
			p.Pages = append([]memsim.VPN(nil), p.Pages...)
			preds = append(preds, p)
		}
		if p, ok := tr.Observe(0, 1, memsim.VPN(9000+i)); ok {
			p.Pages = append([]memsim.VPN(nil), p.Pages...)
			preds = append(preds, p)
		}
	}
	if tr.LiveStreams() != 2 {
		t.Fatalf("LiveStreams = %d, want 2", tr.LiveStreams())
	}
	sawStride2, sawStride1 := false, false
	for _, p := range preds {
		if p.Tier != TierSSP {
			continue
		}
		switch {
		case p.Pages[0] >= 9000 && p.Pages[0] < 9100:
			sawStride1 = true
		case p.Pages[0] >= 1000 && p.Pages[0] < 1100:
			sawStride2 = true
		}
	}
	if !sawStride1 || !sawStride2 {
		t.Fatalf("interleaved streams not both predicted: stride2=%v stride1=%v", sawStride2, sawStride1)
	}
}

func TestDuplicateHotPagesIgnored(t *testing.T) {
	tr := NewTrainer(DefaultParams())
	tr.Observe(0, 1, 50)
	tr.Observe(0, 1, 50)
	tr.Observe(0, 1, 50)
	if tr.Stats().Duplicates != 2 {
		t.Fatalf("Duplicates = %d, want 2", tr.Stats().Duplicates)
	}
	if tr.LiveStreams() != 1 {
		t.Fatal("duplicates created extra streams")
	}
}

func TestLadderFallsToLSP(t *testing.T) {
	params := DefaultParams()
	tr := NewTrainer(params)
	// Ladder within Δ_stream: 3 unevenly spaced streams (bases 0/10/35),
	// tread stride 1. No single stride dominates (each inter-stream
	// stride appears ⅓ of the time), so SSP must pass and LSP catch it.
	var seq []memsim.VPN
	for i := 0; i < 12; i++ {
		for _, b := range []uint64{0, 10, 35} {
			seq = append(seq, memsim.VPN(b+uint64(i)))
		}
	}
	preds := feed(tr, 1, seq)
	var lsp int
	for _, p := range preds {
		if p.Tier == TierLSP {
			lsp++
		}
		if p.Tier == TierSSP {
			t.Fatalf("SSP fired on a ladder: %+v", p)
		}
	}
	if lsp == 0 {
		t.Fatal("LSP never fired on a ladder stream")
	}
}

func TestRippleFallsToRSP(t *testing.T) {
	tr := NewTrainer(DefaultParams())
	// Ripple: stride-1 advance with out-of-order wiggles and hops that
	// defeat both a dominant stride and an exact repeating pattern, but
	// whose cumulative strides keep returning to the stream.
	wiggle := []int64{1, 1, -1, 3, 1, -2, 4, 1, 1, -1, 2, 1, -1, 3, 1, 1, -2, 3, 1, 2, -1, 1, 1, -1, 2}
	var seq []memsim.VPN
	v := int64(500)
	for _, w := range wiggle {
		v += w
		seq = append(seq, memsim.VPN(v))
	}
	preds := feed(tr, 1, seq)
	var rspN int
	for _, p := range preds {
		if p.Tier == TierRSP {
			rspN++
		}
	}
	if rspN == 0 {
		got := map[Tier]int{}
		for _, p := range preds {
			got[p.Tier]++
		}
		t.Fatalf("RSP never fired on a ripple stream (tiers: %v)", got)
	}
}

func TestTierDisabling(t *testing.T) {
	params := DefaultParams()
	params.EnableLSP, params.EnableRSP = false, false
	tr := NewTrainer(params)
	var seq []memsim.VPN
	for i := 0; i < 12; i++ {
		for _, b := range []uint64{0, 10, 35} {
			seq = append(seq, memsim.VPN(b+uint64(i)))
		}
	}
	if preds := feed(tr, 1, seq); len(preds) != 0 {
		t.Fatalf("SSP-only trainer predicted %d times on a ladder", len(preds))
	}
}

func TestIntensityProducesMorePages(t *testing.T) {
	params := DefaultParams()
	params.Policy.Intensity = 3
	tr := NewTrainer(params)
	preds := feed(tr, 1, seqVPNs(0, 4, 17))
	if len(preds) == 0 {
		t.Fatal("no prediction")
	}
	p := preds[0]
	if len(p.Pages) != 3 {
		t.Fatalf("pages = %v, want 3 pages", p.Pages)
	}
	// VPN_A = 64, stride 4, offsets 1,2,3 ⇒ 68, 72, 76.
	want := []memsim.VPN{68, 72, 76}
	for i, w := range want {
		if p.Pages[i] != w {
			t.Fatalf("pages = %v, want %v", p.Pages, want)
		}
	}
}

func TestOffsetFeedback(t *testing.T) {
	tr := NewTrainer(DefaultParams())
	preds := feed(tr, 1, seqVPNs(0, 1, 17))
	if len(preds) != 1 {
		t.Fatalf("predictions = %d", len(preds))
	}
	ref := preds[0].Stream
	o0, ok := tr.OffsetOf(ref)
	if !ok || o0 != 1 {
		t.Fatalf("initial offset = %f, %v", o0, ok)
	}
	// Barely-in-time pages push the offset out.
	tr.Feedback(ref, 10*vclock.Microsecond) // < TMin=40µs
	if o1, _ := tr.OffsetOf(ref); o1 != 1.2 {
		t.Fatalf("offset after raise = %f, want 1.2", o1)
	}
	// Far-too-early pages pull it back (floored at 1).
	tr.Feedback(ref, 10*vclock.Millisecond) // > TMax=5ms
	if o2, _ := tr.OffsetOf(ref); o2 < 0.95 || o2 > 1.0 {
		t.Fatalf("offset after lower = %f, want 1.0 (floor)", o2)
	}
	// In-band lead leaves it alone.
	tr.Feedback(ref, 1*vclock.Millisecond)
	if o3, _ := tr.OffsetOf(ref); o3 != 1.0 {
		t.Fatalf("in-band feedback moved offset to %f", o3)
	}
}

func TestOffsetCapAndFloor(t *testing.T) {
	tr := NewTrainer(DefaultParams())
	preds := feed(tr, 1, seqVPNs(0, 1, 17))
	ref := preds[0].Stream
	for i := 0; i < 100; i++ {
		tr.Feedback(ref, 0)
	}
	if o, _ := tr.OffsetOf(ref); o != 1024 {
		t.Fatalf("offset not capped at i_max: %f", o)
	}
	for i := 0; i < 200; i++ {
		tr.Feedback(ref, 10*vclock.Millisecond)
	}
	if o, _ := tr.OffsetOf(ref); o < 1 {
		t.Fatalf("offset fell below 1: %f", o)
	}
}

func TestStaleFeedbackIgnored(t *testing.T) {
	params := DefaultParams()
	params.StreamEntries = 1 // force eviction
	tr := NewTrainer(params)
	preds := feed(tr, 1, seqVPNs(0, 1, 17))
	ref := preds[0].Stream
	// A far-away page evicts the only entry; the ref generation is stale.
	tr.Observe(0, 1, 100000)
	tr.Feedback(ref, 0)
	if _, ok := tr.OffsetOf(ref); ok {
		t.Fatal("stale stream ref resolved")
	}
	if tr.Stats().OffsetRaises != 0 {
		t.Fatal("stale feedback adjusted an offset")
	}
}

func TestNonAdaptivePolicyFrozen(t *testing.T) {
	params := DefaultParams()
	params.Policy.Adaptive = false
	params.Policy.InitialOffset = 5
	tr := NewTrainer(params)
	preds := feed(tr, 1, seqVPNs(0, 1, 17))
	ref := preds[0].Stream
	tr.Feedback(ref, 0)
	if o, _ := tr.OffsetOf(ref); o != 5 {
		t.Fatalf("non-adaptive offset moved: %f", o)
	}
}

func TestLRUStreamEviction(t *testing.T) {
	params := DefaultParams()
	params.StreamEntries = 2
	tr := NewTrainer(params)
	tr.Observe(0, 1, 1000)  // stream A
	tr.Observe(1, 1, 50000) // stream B
	tr.Observe(2, 1, 1001)  // refresh A
	tr.Observe(3, 1, 90000) // stream C: evicts B (LRU)
	tr.Observe(4, 1, 1002)  // still matches A
	if tr.Stats().StreamsCreated != 3 || tr.Stats().StreamsEvicted != 1 {
		t.Fatalf("stats = %+v", tr.Stats())
	}
}

func TestNegativeStreamPrediction(t *testing.T) {
	tr := NewTrainer(DefaultParams())
	preds := feed(tr, 1, seqVPNs(10000, -3, 20))
	if len(preds) == 0 {
		t.Fatal("descending stream not predicted")
	}
	if p := preds[0]; p.Pages[0] >= 10000-16*3 {
		t.Fatalf("descending prediction points the wrong way: %v", p.Pages)
	}
}

func TestPredictionNeverBelowZero(t *testing.T) {
	tr := NewTrainer(DefaultParams())
	// Stream descending toward VPN 0: predictions must be clipped, not wrap.
	preds := feed(tr, 1, seqVPNs(17, -1, 18))
	for _, p := range preds {
		for _, pg := range p.Pages {
			if int64(pg) <= 0 || pg > memsim.MaxVPN {
				t.Fatalf("out-of-range prediction %d", pg)
			}
		}
	}
}
