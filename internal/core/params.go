// Package core implements HoPP's software side — the paper's primary
// contribution (§III-D/E/F): the prefetch training framework built
// around the Stream Training Table, the Adaptive Three-Tier Prefetching
// algorithms (SSP, LSP, RSP), the policy engine with its intensity and
// offset knobs, and the execution engine that deduplicates requests,
// reads pages over RDMA and injects PTEs as soon as they arrive.
package core

import "hopp/internal/vclock"

// Prediction algorithm names for Params.Algorithm.
const (
	AlgoThreeTier = "three-tier"
	AlgoMarkov    = "markov"
)

// Tier identifies which prefetch algorithm produced a prediction.
type Tier int

// The three tiers, tried in this order (§III-D1).
const (
	TierNone Tier = iota
	TierSSP       // Simple-Stream-based Prefetch
	TierLSP       // Ladder-Stream-based Prefetch
	TierRSP       // Ripple-Stream-based Prefetch
)

func (t Tier) String() string {
	switch t {
	case TierSSP:
		return "SSP"
	case TierLSP:
		return "LSP"
	case TierRSP:
		return "RSP"
	default:
		return "none"
	}
}

// PolicyParams are the policy engine's knobs (§III-E).
type PolicyParams struct {
	// InitialOffset is the starting prefetch offset i for a new stream.
	InitialOffset float64
	// Alpha is the multiplicative adjustment step; i grows by (1+Alpha)
	// when prefetches arrive barely in time and shrinks by (1-Alpha)
	// when they arrive far too early. Default 0.2.
	Alpha float64
	// MaxOffset caps i. Default 1024 (the paper's i_max = 1K).
	MaxOffset float64
	// TMin: a prefetched page first hit sooner than this after arriving
	// was almost late; prefetch further ahead. Default 40 µs.
	TMin vclock.Duration
	// TMax: a page that sat unused longer than this was fetched too
	// early; pull the offset in. Default 5 ms.
	TMax vclock.Duration
	// Adaptive disables offset feedback when false (fixed-offset
	// ablation in Fig. 22).
	Adaptive bool
	// Intensity is how many pages to prefetch per identified trigger;
	// §III-E prefetches one page per hot page, more when bandwidth
	// allows. Default 1.
	Intensity int
}

// DefaultPolicy returns the paper's defaults (§III-E): α = 0.2,
// i_max = 1K, T_min = 40 µs, T_max = 5 ms.
func DefaultPolicy() PolicyParams {
	return PolicyParams{
		InitialOffset: 1,
		Alpha:         0.2,
		MaxOffset:     1024,
		TMin:          40 * vclock.Microsecond,
		TMax:          5 * vclock.Millisecond,
		Adaptive:      true,
		Intensity:     1,
	}
}

// Params configures the whole HoPP software stack.
type Params struct {
	// StreamEntries is the Stream Training Table size. Default 64 (§III-D1).
	StreamEntries int
	// HistoryLen is L, the VPN history window per stream. Default 16.
	HistoryLen int
	// DeltaStream is Δ_stream, the page-clustering distance: a hot page
	// joins a stream when its VPN is within this many pages of the
	// stream's last VPN. Default 64 (§III-D1).
	DeltaStream int64
	// MaxRippleStride is RSP's max_stride tolerance for out-of-order
	// accesses. Default 2 (§III-D4).
	MaxRippleStride int64
	// EnableSSP/EnableLSP/EnableRSP toggle tiers (the Fig. 18–20
	// ablation). All true by default.
	EnableSSP bool
	EnableLSP bool
	EnableRSP bool
	// Policy is the policy engine configuration.
	Policy PolicyParams
	// Bulk configures §IV's huge-page-space prefetching: when a stride-1
	// stream has proven long enough, swap a whole 2 MB worth of future
	// pages with one request.
	Bulk BulkParams
	// Algorithm selects the prediction algorithm: AlgoThreeTier (the
	// paper's design, default) or AlgoMarkov (a delta-correlation
	// alternative demonstrating §III-D's pluggable design space).
	Algorithm string
	// DropShared ignores hot pages whose RPT entry carries the shared
	// flag (§III-C forwards it "for better predictions"): shared pages
	// are touched by several processes, so their per-PID access order is
	// noise to stream detection.
	DropShared bool
	// SmartEviction feeds MC-level hotness back into kernel reclaim
	// (§IV: "improving kernel page eviction"): recently-hot LRU tails
	// are rotated instead of evicted.
	SmartEviction bool
	// EvictionWindow is how many recent hot page records count as
	// "recently hot". Default 2048.
	EvictionWindow int
}

// BulkParams configures §IV's large-space prefetching.
type BulkParams struct {
	// Enable turns bulk prefetching on. Off by default.
	Enable bool
	// StreamLength is how many consecutive stride-1 predictions a stream
	// must produce before it is considered "long enough" (§IV). Default 64.
	StreamLength int
	// Pages is the bulk request size. Default 512 (one 2 MB huge page).
	Pages int
	// MinRemoteFrac is the fraction of the bulk window that must
	// actually be swapped out for the request to go ahead; otherwise the
	// stream falls back to per-page prefetching. Default 0.9.
	MinRemoteFrac float64
}

// DefaultParams returns the paper's configuration.
func DefaultParams() Params {
	return Params{
		StreamEntries:   64,
		HistoryLen:      16,
		DeltaStream:     64,
		MaxRippleStride: 2,
		EnableSSP:       true,
		EnableLSP:       true,
		EnableRSP:       true,
		Policy:          DefaultPolicy(),
	}
}

func (p *Params) fill() {
	if p.StreamEntries == 0 {
		p.StreamEntries = 64
	}
	if p.HistoryLen == 0 {
		p.HistoryLen = 16
	}
	if p.DeltaStream == 0 {
		p.DeltaStream = 64
	}
	if p.MaxRippleStride == 0 {
		p.MaxRippleStride = 2
	}
	if p.Policy.InitialOffset == 0 {
		p.Policy.InitialOffset = 1
	}
	if p.Policy.Alpha == 0 {
		p.Policy.Alpha = 0.2
	}
	if p.Policy.MaxOffset == 0 {
		p.Policy.MaxOffset = 1024
	}
	if p.Policy.TMin == 0 {
		p.Policy.TMin = 40 * vclock.Microsecond
	}
	if p.Policy.TMax == 0 {
		p.Policy.TMax = 5 * vclock.Millisecond
	}
	if p.Policy.Intensity == 0 {
		p.Policy.Intensity = 1
	}
	if p.Bulk.StreamLength == 0 {
		p.Bulk.StreamLength = 64
	}
	if p.Bulk.Pages == 0 {
		p.Bulk.Pages = 512
	}
	if p.Bulk.MinRemoteFrac == 0 {
		p.Bulk.MinRemoteFrac = 0.9
	}
	if p.EvictionWindow == 0 {
		p.EvictionWindow = 2048
	}
}
