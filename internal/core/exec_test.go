package core

import (
	"testing"

	"hopp/internal/memsim"
	"hopp/internal/vclock"
	"hopp/internal/vmm"
)

// fakeBackend is a scriptable machine for executor tests.
type fakeBackend struct {
	states    map[memsim.PageKey]vmm.PageState
	latency   vclock.Duration
	fetched   []memsim.PageKey
	injects   map[memsim.PageKey]func(vclock.Time)
	failNext  bool
	bulkCalls int
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{
		states:  make(map[memsim.PageKey]vmm.PageState),
		latency: 4 * vclock.Microsecond,
		injects: make(map[memsim.PageKey]func(vclock.Time)),
	}
}

func (b *fakeBackend) PageState(key memsim.PageKey) vmm.PageState {
	if s, ok := b.states[key]; ok {
		return s
	}
	return vmm.SwappedOut
}

func (b *fakeBackend) Fetch(now vclock.Time, key memsim.PageKey, onInjected func(vclock.Time)) bool {
	if b.failNext {
		b.failNext = false
		return false
	}
	b.fetched = append(b.fetched, key)
	b.injects[key] = onInjected
	return true
}

func (b *fakeBackend) FetchBulk(now vclock.Time, keys []memsim.PageKey, onInjected func(memsim.PageKey, vclock.Time)) bool {
	if b.failNext {
		b.failNext = false
		return false
	}
	b.bulkCalls++
	for _, k := range keys {
		k := k
		b.fetched = append(b.fetched, k)
		b.injects[k] = func(t vclock.Time) { onInjected(k, t) }
	}
	return true
}

func (b *fakeBackend) InjectSwapCached(now vclock.Time, key memsim.PageKey) bool {
	if b.states[key] != vmm.SwapCached {
		return false
	}
	b.states[key] = vmm.Mapped
	return true
}

// land simulates the injection event firing at arrival.
func (b *fakeBackend) land(key memsim.PageKey, arrival vclock.Time) {
	if fn, ok := b.injects[key]; ok {
		fn(arrival)
		delete(b.injects, key)
	}
}

func predFor(pid memsim.PID, tier Tier, pages ...memsim.VPN) Prediction {
	return Prediction{Stream: StreamRef{Index: 0, Gen: 1}, Tier: tier, PID: pid, Pages: pages}
}

func newExec() (*Executor, *fakeBackend, *Trainer) {
	b := newFakeBackend()
	tr := NewTrainer(DefaultParams())
	return NewExecutor(b, tr, tr.Params()), b, tr
}

func TestSubmitFetchInjectHit(t *testing.T) {
	x, b, _ := newExec()
	x.Submit(0, predFor(1, TierSSP, 100))
	if len(b.fetched) != 1 {
		t.Fatalf("fetched %d pages", len(b.fetched))
	}
	key := memsim.PageKey{PID: 1, VPN: 100}
	if !x.Inflight(key) {
		t.Fatal("request not inflight")
	}
	b.land(key, 4000)
	if x.Inflight(key) {
		t.Fatal("landed request still inflight")
	}
	if !x.IsPrefetched(key) {
		t.Fatal("landed request not tracked")
	}
	x.OnFirstHit(key, 50_000)
	s := x.Stats()
	if s.Issued != 1 || s.Arrived != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Accuracy() != 1 {
		t.Fatalf("accuracy = %f", s.Accuracy())
	}
	if s.MeanLead() != 46_000 {
		t.Fatalf("mean lead = %v, want 46 µs", s.MeanLead())
	}
	if x.Outstanding() != 0 {
		t.Fatal("request leaked")
	}
}

func TestDedupResidentAndInflight(t *testing.T) {
	x, b, _ := newExec()
	k1 := memsim.PageKey{PID: 1, VPN: 1}
	b.states[k1] = vmm.Mapped
	x.Submit(0, predFor(1, TierSSP, 1)) // resident: skip
	x.Submit(0, predFor(1, TierSSP, 2)) // ok
	x.Submit(0, predFor(1, TierSSP, 2)) // inflight dup: skip
	s := x.Stats()
	if s.Issued != 1 || s.SkipResident != 1 || s.SkipInflight != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if len(b.fetched) != 1 {
		t.Fatalf("backend fetched %d", len(b.fetched))
	}
}

func TestSkipUntouchedPages(t *testing.T) {
	x, b, _ := newExec()
	k := memsim.PageKey{PID: 1, VPN: 9}
	b.states[k] = vmm.Untouched
	x.Submit(0, predFor(1, TierRSP, 9))
	if x.Stats().SkipCold != 1 || x.Stats().Issued != 0 {
		t.Fatalf("stats = %+v", x.Stats())
	}
}

func TestBackendFetchFailure(t *testing.T) {
	x, b, _ := newExec()
	b.failNext = true
	x.Submit(0, predFor(1, TierSSP, 5))
	s := x.Stats()
	if s.Issued != 0 || s.SkipCold != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if x.Outstanding() != 0 {
		t.Fatal("failed fetch left state")
	}
}

func TestLateHit(t *testing.T) {
	x, b, tr := newExec()
	// Build a live stream so feedback has a target.
	preds := feed(tr, 1, seqVPNs(0, 1, 17))
	pred := preds[0]
	x.Submit(0, pred)
	key := memsim.PageKey{PID: 1, VPN: pred.Pages[0]}
	if !x.Inflight(key) {
		t.Fatal("not inflight")
	}
	o0, _ := tr.OffsetOf(pred.Stream)
	x.NoteLateHit(key, 1000)
	s := x.Stats()
	if s.LateHits != 1 || s.Hits != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Accuracy() != 1 {
		t.Fatalf("late hit must count toward accuracy: %f", s.Accuracy())
	}
	// A late hit means lead 0 < TMin: the offset must grow.
	if o1, _ := tr.OffsetOf(pred.Stream); o1 <= o0 {
		t.Fatalf("offset did not grow after late hit: %f -> %f", o0, o1)
	}
	_ = b
}

func TestEvictedPrefetchCountsAgainstAccuracy(t *testing.T) {
	x, b, _ := newExec()
	x.Submit(0, predFor(1, TierSSP, 7))
	key := memsim.PageKey{PID: 1, VPN: 7}
	b.land(key, 4000)
	x.OnEvicted(key)
	s := x.Stats()
	if s.Evicted != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Accuracy() != 0 {
		t.Fatalf("accuracy = %f, want 0", s.Accuracy())
	}
	// A hit after eviction must be ignored (the page is gone).
	x.OnFirstHit(key, 9000)
	if x.Stats().Hits != 0 {
		t.Fatal("hit counted after eviction")
	}
}

func TestHitBeforeLandingIgnored(t *testing.T) {
	x, _, _ := newExec()
	x.Submit(0, predFor(1, TierSSP, 3))
	key := memsim.PageKey{PID: 1, VPN: 3}
	x.OnFirstHit(key, 100) // not landed yet: OnFirstHit is for injected pages only
	if x.Stats().Hits != 0 {
		t.Fatal("unlanded hit counted")
	}
}

func TestPerTierAccounting(t *testing.T) {
	x, b, _ := newExec()
	x.Submit(0, predFor(1, TierSSP, 10))
	x.Submit(0, predFor(1, TierLSP, 11))
	x.Submit(0, predFor(1, TierRSP, 12))
	for _, v := range []memsim.VPN{10, 11, 12} {
		b.land(memsim.PageKey{PID: 1, VPN: v}, 4000)
		x.OnFirstHit(memsim.PageKey{PID: 1, VPN: v}, 8000)
	}
	s := x.Stats()
	if s.IssuedByTier[TierSSP] != 1 || s.IssuedByTier[TierLSP] != 1 || s.IssuedByTier[TierRSP] != 1 {
		t.Fatalf("issued by tier = %v", s.IssuedByTier)
	}
	if s.HitsByTier[TierSSP] != 1 || s.HitsByTier[TierLSP] != 1 || s.HitsByTier[TierRSP] != 1 {
		t.Fatalf("hits by tier = %v", s.HitsByTier)
	}
}

func TestPrefetcherEndToEnd(t *testing.T) {
	b := newFakeBackend()
	p := NewPrefetcher(DefaultParams(), b)
	// Stream of hot pages with stride 2; after history fills, every hot
	// page should produce one fetch.
	for i := 0; i < 30; i++ {
		p.OnHotPage(vclock.Time(i*1000), 1, memsim.VPN(100+i*2), false)
	}
	if got := p.Exec.Stats().Issued; got < 10 {
		t.Fatalf("issued = %d, want a steady prefetch flow", got)
	}
	// With offset 1 and no feedback, the j-th prediction is triggered by
	// hot page 132+2j and fetches exactly one stride ahead: 134+2j.
	for j, k := range b.fetched {
		if want := memsim.VPN(134 + 2*j); k.VPN != want {
			t.Fatalf("fetched[%d] = %d, want %d", j, k.VPN, want)
		}
	}
}
