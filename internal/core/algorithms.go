package core

import "hopp/internal/memsim"

// This file holds the three tier algorithms as pure functions over a
// stream's VPN/stride history, mirroring §III-D2–4. The inputs follow
// the paper's convention: vpns holds the last L pages of the stream
// (oldest first), strides the L-1 derived strides, and strideA is the
// stride from vpns[L-1] to the newly arrived hot page — which has NOT
// yet been appended to the history.

// countWindow bounds the history length for which the frequency helpers
// below count on the stack. Histories are HistoryLen-bounded (default
// 16), so the linear-scan arrays cover every realistic configuration;
// larger windows fall back to a map. The two paths are semantically
// identical: first-seen order decides ties exactly as map insertion
// order used to, because both update the best only on a strictly
// greater count while scanning the input in order.
const countWindow = 64

// dominantStride returns the stride occurring at least ceil(half) times
// among strides ∪ {strideA}, if any. SSP's "dominant" condition is
// occurrence ≥ L/2 (§III-D2).
func dominantStride(strides []memsim.Stride, strideA memsim.Stride, half int) (memsim.Stride, bool) {
	var best memsim.Stride
	var bestN int
	uniform := true
	for _, s := range strides {
		if s != strideA {
			uniform = false
			break
		}
	}
	if uniform {
		// One distinct stride — the shape every steady stream produces.
		// Answering directly skips the counting scratch below, whose
		// zeroing otherwise dominates this function.
		best, bestN = strideA, len(strides)+1
	} else if len(strides) < countWindow {
		var vals [countWindow]memsim.Stride
		var counts [countWindow]int
		vals[0], counts[0] = strideA, 1
		n := 1
		best, bestN = strideA, 1
		for _, s := range strides {
			j := 0
			for ; j < n; j++ {
				if vals[j] == s {
					break
				}
			}
			if j == n {
				vals[n] = s
				n++
			}
			counts[j]++
			if counts[j] > bestN {
				best, bestN = s, counts[j]
			}
		}
	} else {
		counts := make(map[memsim.Stride]int, len(strides)+1)
		counts[strideA]++
		best, bestN = strideA, counts[strideA]
		for _, s := range strides {
			counts[s]++
			if counts[s] > bestN {
				best, bestN = s, counts[s]
			}
		}
	}
	if bestN >= half {
		return best, true
	}
	return 0, false
}

// ssp runs Simple-Stream-based Prefetch: a dominant stride identifies a
// simple stream. It returns the stride to extrapolate with.
func ssp(strides []memsim.Stride, strideA memsim.Stride, historyLen int) (memsim.Stride, bool) {
	s, ok := dominantStride(strides, strideA, historyLen/2)
	if !ok || s == 0 {
		return 0, false
	}
	return s, true
}

// lspResult carries LSP's two outputs (Algorithm 1).
type lspResult struct {
	strideTarget  memsim.Stride
	patternStride memsim.Stride
}

// lsp runs Ladder-Stream-based Prefetch (Algorithm 1). The target
// pattern is the latest M=2 consecutive strides {strides[L-2], strideA};
// every earlier occurrence of that pattern is a candidate. The next
// stride of the target is the mode of the candidates' next strides, and
// the ladder period (pattern_stride) is the mode of the page distances
// between consecutive candidate occurrences.
func lsp(vpns []memsim.VPN, strides []memsim.Stride, strideA memsim.Stride) (lspResult, bool) {
	l := len(vpns)
	if l < 4 || len(strides) != l-1 {
		return lspResult{}, false
	}
	pt0 := strides[l-2] // pattern_target[0]
	pt1 := strideA      // pattern_target[1]

	var nsBuf, ssBuf [countWindow]memsim.Stride
	nextStrides := nsBuf[:0]
	strideSums := ssBuf[:0]
	lastIndex := l - 2
	for i := l - 3; i >= 0; i-- {
		if strides[i] == pt0 && strides[i+1] == pt1 {
			if i+2 <= l-2 {
				nextStrides = append(nextStrides, strides[i+2])
			}
			strideSums = append(strideSums, memsim.StrideBetween(vpns[i], vpns[lastIndex]))
			lastIndex = i
		}
	}
	if len(nextStrides) == 0 || len(strideSums) == 0 {
		return lspResult{}, false
	}
	res := lspResult{
		strideTarget:  mode(nextStrides),
		patternStride: mode(strideSums),
	}
	if res.patternStride == 0 {
		return lspResult{}, false
	}
	return res, true
}

// mode returns the most frequent value; ties break toward the value
// found earliest, i.e. the most recent occurrence (candidates are
// gathered newest-first).
func mode(xs []memsim.Stride) memsim.Stride {
	if len(xs) <= countWindow {
		var vals [countWindow]memsim.Stride
		var counts [countWindow]int
		n := 0
		best, bestN := xs[0], 0
		for _, x := range xs {
			j := 0
			for ; j < n; j++ {
				if vals[j] == x {
					break
				}
			}
			if j == n {
				vals[n] = x
				n++
			}
			counts[j]++
			if counts[j] > bestN {
				best, bestN = x, counts[j]
			}
		}
		return best
	}
	counts := make(map[memsim.Stride]int, len(xs))
	best, bestN := xs[0], 0
	for _, x := range xs {
		counts[x]++
		if counts[x] > bestN {
			best, bestN = x, counts[x]
		}
	}
	return best
}

// rsp runs Ripple-Stream-based Prefetch (Algorithm 2): walking the
// history backwards, every point whose cumulative stride returns to
// within maxStride is a ripple page; when at least half the window
// ripples, the stream is a set of stride-1 simple streams distorted by
// out-of-order and across-stream hops, and the next page is VPN_A + i.
func rsp(strides []memsim.Stride, strideA memsim.Stride, historyLen int, maxStride int64) bool {
	rippleNum := 0
	var accumulate memsim.Stride
	if strideA.Abs() <= memsim.Stride(maxStride) {
		rippleNum++
		accumulate = 0
	}
	for i := len(strides) - 1; i >= 0; i-- {
		accumulate += strides[i]
		if accumulate.Abs() <= memsim.Stride(maxStride) {
			rippleNum++
			accumulate = 0
		}
	}
	return rippleNum >= historyLen/2
}
