package core

import (
	"hopp/internal/memsim"
	"hopp/internal/vclock"
)

// Algorithm is the pluggable prediction slot of the prefetch training
// framework. §III-D1 is explicit that the adaptive three-tier design
// "is just one solution in a large design space; advanced solutions
// like machine learning-based ones can also be enabled by full trace" —
// this interface is that enablement. Trainer (the paper's three-tier
// cascade) is the default implementation; Markov below is a
// delta-correlation alternative.
type Algorithm interface {
	// Name identifies the algorithm in output.
	Name() string
	// Observe consumes one hot page record and may return a prediction.
	Observe(now vclock.Time, pid memsim.PID, vpn memsim.VPN) (Prediction, bool)
	// Feedback delivers prefetch timeliness (first hit − arrival) for a
	// prediction's stream, for algorithms that self-tune.
	Feedback(ref StreamRef, lead vclock.Duration)
}

// Name implements Algorithm for the three-tier trainer.
func (t *Trainer) Name() string { return "three-tier" }

var _ Algorithm = (*Trainer)(nil)

// Markov is a second-order delta-correlation predictor over the hot
// page trace (in the lineage of GHB delta-correlation prefetchers): the
// last two per-stream deltas index a table of observed next deltas, and
// the most frequent one extrapolates the stream. It shares the STT's
// page-clustering front end via a per-PID last-page map, but learns
// arbitrary repeating delta patterns rather than the three named ones.
type Markov struct {
	params Params

	// last tracks each (PID, cluster) stream head. Clustering is by
	// Δ_stream distance, like the trainer's.
	streams []markovStream
	tick    uint64

	// table maps a delta-pair context to next-delta counts.
	table map[[2]memsim.Stride]map[memsim.Stride]int

	stats TrainerStats
}

type markovStream struct {
	valid  bool
	pid    memsim.PID
	last   memsim.VPN
	d1, d2 memsim.Stride // two most recent deltas, d2 newest
	warm   int
	tick   uint64
}

// NewMarkov builds the predictor.
func NewMarkov(params Params) *Markov {
	params.fill()
	return &Markov{
		params:  params,
		streams: make([]markovStream, params.StreamEntries),
		table:   make(map[[2]memsim.Stride]map[memsim.Stride]int),
	}
}

// Name implements Algorithm.
func (m *Markov) Name() string { return "markov" }

// Stats returns counters in the trainer's format (Predictions land in
// the SSP slot; the tier taxonomy does not apply).
func (m *Markov) Stats() TrainerStats { return m.stats }

// Observe implements Algorithm.
func (m *Markov) Observe(now vclock.Time, pid memsim.PID, vpn memsim.VPN) (Prediction, bool) {
	m.tick++
	m.stats.HotPages++
	idx := m.match(pid, vpn)
	if idx < 0 {
		m.insert(pid, vpn)
		return Prediction{}, false
	}
	s := &m.streams[idx]
	s.tick = m.tick
	if s.last == vpn {
		m.stats.Duplicates++
		return Prediction{}, false
	}
	delta := memsim.StrideBetween(s.last, vpn)
	s.last = vpn

	var pred Prediction
	have := false
	if s.warm >= 2 {
		// Learn: context (d1,d2) → delta.
		ctx := [2]memsim.Stride{s.d1, s.d2}
		next := m.table[ctx]
		if next == nil {
			next = make(map[memsim.Stride]int)
			m.table[ctx] = next
		}
		next[delta]++
		// Predict from the new context (d2, delta).
		if best, ok := m.lookup([2]memsim.Stride{s.d2, delta}); ok {
			target := int64(vpn) + int64(best)
			if target > 0 && target <= int64(memsim.MaxVPN) {
				pred = Prediction{
					Stream: StreamRef{Index: idx, Gen: 0},
					Tier:   TierSSP,
					PID:    pid,
					Pages:  []memsim.VPN{memsim.VPN(target)},
				}
				have = true
				m.stats.Predictions[TierSSP]++
			}
		}
	}
	s.d1, s.d2 = s.d2, delta
	if s.warm < 2 {
		s.warm++
	}
	return pred, have
}

// lookup returns the most frequent next delta for a context, requiring
// at least two observations to avoid one-off noise.
func (m *Markov) lookup(ctx [2]memsim.Stride) (memsim.Stride, bool) {
	next := m.table[ctx]
	var best memsim.Stride
	bestN := 0
	for d, n := range next {
		if n > bestN || (n == bestN && d < best) {
			best, bestN = d, n
		}
	}
	return best, bestN >= 2
}

// Feedback implements Algorithm; the table-driven predictor has no
// offset to tune, so feedback is informational only.
func (m *Markov) Feedback(StreamRef, vclock.Duration) {}

func (m *Markov) match(pid memsim.PID, vpn memsim.VPN) int {
	best := -1
	bestDist := memsim.Stride(1 << 62)
	for i := range m.streams {
		s := &m.streams[i]
		if !s.valid || s.pid != pid {
			continue
		}
		d := memsim.StrideBetween(s.last, vpn).Abs()
		if d <= memsim.Stride(m.params.DeltaStream) && d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

func (m *Markov) insert(pid memsim.PID, vpn memsim.VPN) {
	victim := 0
	for i := range m.streams {
		if !m.streams[i].valid {
			victim = i
			break
		}
		if m.streams[i].tick < m.streams[victim].tick {
			victim = i
		}
	}
	if m.streams[victim].valid {
		m.stats.StreamsEvicted++
	}
	m.streams[victim] = markovStream{valid: true, pid: pid, last: vpn, tick: m.tick}
	m.stats.StreamsCreated++
}

var _ Algorithm = (*Markov)(nil)
