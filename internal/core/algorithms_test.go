package core

import (
	"testing"

	"hopp/internal/memsim"
)

func strides(vs ...int64) []memsim.Stride {
	out := make([]memsim.Stride, len(vs))
	for i, v := range vs {
		out[i] = memsim.Stride(v)
	}
	return out
}

func vpns(vs ...uint64) []memsim.VPN {
	out := make([]memsim.VPN, len(vs))
	for i, v := range vs {
		out[i] = memsim.VPN(v)
	}
	return out
}

func TestSSPDominantStride(t *testing.T) {
	// 15 strides + strideA, L=16: dominant needs ≥8 occurrences.
	hist := strides(2, 2, 2, 2, 2, 2, 2, 5, 5, 5, 5, 5, 2, 7, 9)
	// stride 2 occurs 8 times in history; strideA=3 does not change that.
	s, ok := ssp(hist, 3, 16)
	if !ok || s != 2 {
		t.Fatalf("ssp = %d,%v, want 2,true", s, ok)
	}
}

func TestSSPNoDominant(t *testing.T) {
	hist := strides(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15)
	if _, ok := ssp(hist, 16, 16); ok {
		t.Fatal("ssp found a dominant stride in all-distinct strides")
	}
}

func TestSSPStrideACounts(t *testing.T) {
	// Exactly 7 in history; strideA makes it 8 = L/2.
	hist := strides(2, 2, 2, 2, 2, 2, 2, 1, 3, 4, 5, 6, 7, 8, 9)
	if s, ok := ssp(hist, 2, 16); !ok || s != 2 {
		t.Fatalf("strideA not counted toward dominance: %d,%v", s, ok)
	}
}

func TestSSPRejectsZeroStride(t *testing.T) {
	hist := strides(0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
	if _, ok := ssp(hist, 0, 16); ok {
		t.Fatal("zero stride accepted as a stream")
	}
}

func TestSSPNegativeStride(t *testing.T) {
	hist := strides(-3, -3, -3, -3, -3, -3, -3, -3, 1, 2, 1, 2, 1, 2, 1)
	if s, ok := ssp(hist, -3, 16); !ok || s != -3 {
		t.Fatalf("descending stream not detected: %d,%v", s, ok)
	}
}

// ladderHistory builds the Fig. 2 footprint: T parallel simple streams
// visited round-robin (the ladder tread), each with a rise between
// sweeps. E.g. with streams at base 0, 100, 200 and tread stride 1:
// 0,100,200, 1,101,201, 2,102,202, ...
func ladderHistory(nStreams int, bases []uint64, count int) []memsim.VPN {
	var out []memsim.VPN
	for i := 0; len(out) < count; i++ {
		for s := 0; s < nStreams && len(out) < count; s++ {
			out = append(out, memsim.VPN(bases[s]+uint64(i)))
		}
	}
	return out
}

func derive(vs []memsim.VPN) []memsim.Stride {
	out := make([]memsim.Stride, len(vs)-1)
	for i := 1; i < len(vs); i++ {
		out[i-1] = memsim.StrideBetween(vs[i-1], vs[i])
	}
	return out
}

func TestLSPIdentifiesLadder(t *testing.T) {
	// 3 interleaved streams at bases 0, 10, 20 with tread stride 1:
	// 0,10,20, 1,11,21, 2,12,22, 3,13,23, 4,14,24, 5 then vA = 15.
	full := ladderHistory(3, []uint64{0, 10, 20}, 17)
	hist := full[:16]
	vA := full[16] // 15
	strideA := memsim.StrideBetween(hist[15], vA)
	res, ok := lsp(hist, derive(hist), strideA)
	if !ok {
		t.Fatal("LSP failed on a clean ladder")
	}
	// The target pattern's next stride continues to the next rung (+10),
	// and the pattern recurs every 1 page along its own stream.
	if res.strideTarget != 10 || res.patternStride != 1 {
		t.Fatalf("strideTarget=%d patternStride=%d, want 10, 1", res.strideTarget, res.patternStride)
	}
	// With offset i=1 the prediction is 15+10+1 = 26; the real future
	// continuation is ...25, 6, 16, 26..., so 26 is indeed upcoming.
	next := int64(vA) + int64(res.strideTarget) + int64(res.patternStride)
	if next != 26 {
		t.Fatalf("prediction = %d, want 26", next)
	}
}

func TestLSPWiderLadder(t *testing.T) {
	// 4 interleaved streams; strideA is the tread rewind (-149).
	full := ladderHistory(4, []uint64{0, 50, 100, 150}, 18)
	hist := full[:16]
	vA := full[16] // 4
	strideA := memsim.StrideBetween(hist[15], vA)
	res, ok := lsp(hist, derive(hist), strideA)
	if !ok {
		t.Fatal("LSP failed")
	}
	if res.strideTarget != 50 || res.patternStride != 1 {
		t.Fatalf("strideTarget=%d patternStride=%d, want 50, 1", res.strideTarget, res.patternStride)
	}
}

func TestLSPRejectsNoRepetition(t *testing.T) {
	hist := vpns(0, 7, 3, 90, 14, 2, 80, 44, 5, 61, 33, 9, 70, 21, 50, 13)
	if _, ok := lsp(hist, derive(hist), 17); ok {
		t.Fatal("LSP matched an unrepeated pattern")
	}
}

func TestLSPShortHistoryRejected(t *testing.T) {
	hist := vpns(1, 2, 3)
	if _, ok := lsp(hist, derive(hist), 1); ok {
		t.Fatal("LSP accepted a 3-page history")
	}
}

func TestRSPCleanRipple(t *testing.T) {
	// A ripple stream: mostly stride 1 with out-of-order wiggles.
	hist := strides(1, 1, -1, 2, 1, 1, 1, -2, 3, 1, 1, 1, 1, 1, 1)
	if !rsp(hist, 1, 16, 2) {
		t.Fatal("RSP rejected a ripple stream")
	}
}

func TestRSPRejectsBigStrides(t *testing.T) {
	// Truly divergent strides: cumulative sums never return near zero.
	div := strides(100, 130, 90, 121, 77, 140, 99, 155, 60, 170, 88, 143, 101, 166, 50)
	if rsp(div, 123, 16, 2) {
		t.Fatal("RSP accepted a divergent stream")
	}
}

func TestRSPHopOutAndBack(t *testing.T) {
	// Fig. 3: accesses hop out of the stream and return: cumulative
	// strides cancel. +5 then -4 nets +1 ≤ max_stride.
	hist := strides(1, 5, -4, 1, 1, 5, -4, 1, 1, 5, -4, 1, 1, 5, -4)
	if !rsp(hist, 1, 16, 2) {
		t.Fatal("RSP rejected hop-out-and-back ripple")
	}
}

func TestRSPThresholdExactlyHalf(t *testing.T) {
	// Algorithm 2 line 10 uses ≥: with historyLen 4 we need 2 ripple
	// points. strideA=1 ripples, and the newest history stride (1)
	// ripples; the huge stride in between blocks further returns.
	if !rsp(strides(1, 1000, 1), 1, 4, 2) {
		t.Fatal("≥ L/2 boundary not honored")
	}
	// One ripple point fewer fails: strideA huge, only the tail 1 counts.
	if rsp(strides(1000, 2000, 1), 999, 4, 2) {
		t.Fatal("below-threshold ripple accepted")
	}
}

func TestModePicksMostFrequent(t *testing.T) {
	if m := mode(strides(3, 5, 3, 7, 3)); m != 3 {
		t.Fatalf("mode = %d, want 3", m)
	}
	if m := mode(strides(9)); m != 9 {
		t.Fatalf("mode single = %d", m)
	}
}
