package core

import (
	"testing"

	"hopp/internal/memsim"
	"hopp/internal/vclock"
)

func feedAlgo(a Algorithm, pid memsim.PID, seq []memsim.VPN) []Prediction {
	var preds []Prediction
	for i, v := range seq {
		if p, ok := a.Observe(vclock.Time(i*1000), pid, v); ok {
			preds = append(preds, p)
		}
	}
	return preds
}

func TestMarkovLearnsConstantStride(t *testing.T) {
	m := NewMarkov(DefaultParams())
	preds := feedAlgo(m, 1, seqVPNs(100, 3, 30))
	if len(preds) == 0 {
		t.Fatal("no predictions on a constant-stride stream")
	}
	// After warmup, every prediction extrapolates by the learned delta.
	last := preds[len(preds)-1]
	if len(last.Pages) != 1 {
		t.Fatalf("pages = %v", last.Pages)
	}
	// Prediction from page 100+29·3 = 187 is 190.
	if last.Pages[0] != 190 {
		t.Fatalf("prediction = %d, want 190", last.Pages[0])
	}
}

func TestMarkovLearnsAlternatingDeltas(t *testing.T) {
	// Pattern +1, +5, +1, +5, … — no dominant stride, but a perfect
	// second-order delta correlation. The trainer's SSP can't see it;
	// Markov nails it after one period.
	m := NewMarkov(DefaultParams())
	var seq []memsim.VPN
	v := memsim.VPN(1000)
	for i := 0; i < 30; i++ {
		seq = append(seq, v)
		if i%2 == 0 {
			v += 1
		} else {
			v += 5
		}
	}
	preds := feedAlgo(m, 1, seq)
	if len(preds) < 10 {
		t.Fatalf("predictions = %d, want steady flow", len(preds))
	}
	// Verify the last few predictions are correct continuations.
	correct := 0
	seqSet := make(map[memsim.VPN]bool)
	v2 := v
	for i := 0; i < 8; i++ { // extend the true pattern
		seqSet[v2] = true
		if i%2 == 0 {
			v2 += 1
		} else {
			v2 += 5
		}
	}
	for _, s := range seq {
		seqSet[s] = true
	}
	for _, p := range preds[len(preds)-6:] {
		if seqSet[p.Pages[0]] {
			correct++
		}
	}
	if correct < 5 {
		t.Fatalf("only %d/6 recent predictions fall on the pattern", correct)
	}
}

func TestMarkovRequiresTwoObservations(t *testing.T) {
	m := NewMarkov(DefaultParams())
	// A delta context seen only once must not predict.
	if preds := feedAlgo(m, 1, []memsim.VPN{10, 11, 13, 14}); len(preds) != 0 {
		t.Fatalf("one-shot context predicted: %v", preds)
	}
}

func TestMarkovPIDSeparation(t *testing.T) {
	m := NewMarkov(DefaultParams())
	for i := 0; i < 25; i++ {
		m.Observe(0, 1, memsim.VPN(100+i*2))
		m.Observe(0, 2, memsim.VPN(100+i*7))
	}
	s := m.Stats()
	if s.StreamsCreated != 2 {
		t.Fatalf("streams = %d, want 2", s.StreamsCreated)
	}
	// Both strides learned: predict for each PID.
	p1, ok1 := m.Observe(0, 1, memsim.VPN(100+25*2))
	p2, ok2 := m.Observe(0, 2, memsim.VPN(100+25*7))
	if !ok1 || !ok2 {
		t.Fatal("per-PID streams not both predicting")
	}
	if p1.Pages[0] != memsim.VPN(100+26*2) || p2.Pages[0] != memsim.VPN(100+26*7) {
		t.Fatalf("predictions %v / %v wrong", p1.Pages, p2.Pages)
	}
}

func TestMarkovDuplicatesIgnored(t *testing.T) {
	m := NewMarkov(DefaultParams())
	m.Observe(0, 1, 50)
	m.Observe(0, 1, 50)
	if m.Stats().Duplicates != 1 {
		t.Fatalf("duplicates = %d", m.Stats().Duplicates)
	}
}

func TestMarkovName(t *testing.T) {
	if NewMarkov(DefaultParams()).Name() != "markov" {
		t.Fatal("name wrong")
	}
	if NewTrainer(DefaultParams()).Name() != "three-tier" {
		t.Fatal("trainer name wrong")
	}
}

func TestPrefetcherSelectsAlgorithm(t *testing.T) {
	b := newFakeBackend()
	p := DefaultParams()
	p.Algorithm = AlgoMarkov
	pf := NewPrefetcher(p, b)
	if pf.Trainer != nil {
		t.Fatal("markov prefetcher kept a trainer")
	}
	if pf.Algo.Name() != "markov" {
		t.Fatalf("algo = %s", pf.Algo.Name())
	}
	def := NewPrefetcher(DefaultParams(), b)
	if def.Trainer == nil || def.Algo.Name() != "three-tier" {
		t.Fatal("default prefetcher not three-tier")
	}
}
