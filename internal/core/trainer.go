package core

import (
	"math"

	"hopp/internal/memsim"
	"hopp/internal/vclock"
)

// StreamRef identifies a live STT entry across evictions: feedback
// carrying a stale generation is ignored.
type StreamRef struct {
	Index int
	Gen   uint64
}

// Prediction is one prefetch decision handed to the execution engine.
type Prediction struct {
	Stream StreamRef
	Tier   Tier
	PID    memsim.PID
	// Pages are the VPNs to prefetch, Intensity-many, nearest first —
	// or the whole bulk window when Bulk is set.
	//
	// Lifetime: Pages may alias a scratch buffer owned by the producing
	// trainer and is valid only until its next Observe call. The
	// executor consumes predictions synchronously; callers that retain
	// one must copy Pages first.
	Pages []memsim.VPN
	// Bulk marks a §IV huge-space request: the executor should move the
	// whole window with a single transfer.
	Bulk bool
}

// TrainerStats counts training activity, feeding the per-tier
// experiments (Figs. 18–20).
type TrainerStats struct {
	HotPages        uint64
	Duplicates      uint64
	StreamsCreated  uint64
	StreamsEvicted  uint64
	Predictions     [4]uint64 // indexed by Tier
	BulkPredictions uint64
	OffsetRaises    uint64
	OffsetLowers    uint64
}

type sttEntry struct {
	valid   bool
	pid     memsim.PID
	vpns    []memsim.VPN    // oldest first, ≤ HistoryLen
	strides []memsim.Stride // len(vpns)-1
	tick    uint64
	gen     uint64
	offset  float64
	// streak counts consecutive unit-stride SSP predictions — §IV's
	// "stream is long enough" detector for bulk prefetching.
	streak int
	// bulkFence gates the next bulk request until the stream head has
	// consumed the previous window.
	bulkFence int64
	bulkArmed bool
}

func (e *sttEntry) last() memsim.VPN { return e.vpns[len(e.vpns)-1] }

// Trainer is the prefetch training framework (§III-D1): the Stream
// Training Table plus the adaptive three-tier prediction cascade, with
// the policy engine's per-stream offset state (§III-E).
type Trainer struct {
	params  Params
	entries []sttEntry
	tick    uint64
	nextGen uint64
	// pagesBuf backs non-bulk Prediction.Pages; reused across
	// predictions so the steady-state hot-page path stays off the heap
	// (see the lifetime note on Prediction.Pages).
	pagesBuf []memsim.VPN
	stats    TrainerStats
}

// NewTrainer builds a trainer; zero param fields take paper defaults.
func NewTrainer(params Params) *Trainer {
	params.fill()
	return &Trainer{
		params:  params,
		entries: make([]sttEntry, params.StreamEntries),
	}
}

// Params returns the effective configuration.
func (t *Trainer) Params() Params { return t.params }

// Stats returns a copy of the counters.
func (t *Trainer) Stats() TrainerStats { return t.stats }

// Observe feeds one hot page record into the table and returns a
// prediction when a stream pattern is identified.
func (t *Trainer) Observe(now vclock.Time, pid memsim.PID, vpn memsim.VPN) (Prediction, bool) {
	t.tick++
	t.stats.HotPages++

	idx := t.match(pid, vpn)
	if idx < 0 {
		t.insert(pid, vpn)
		return Prediction{}, false
	}
	e := &t.entries[idx]
	e.tick = t.tick
	if e.last() == vpn {
		// Repeated extraction of the same page (multi-channel dedup,
		// §III-B); nothing new to learn.
		t.stats.Duplicates++
		return Prediction{}, false
	}
	strideA := memsim.StrideBetween(e.last(), vpn)

	var pred Prediction
	havePred := false
	if len(e.vpns) == t.params.HistoryLen {
		pred, havePred = t.predict(idx, vpn, strideA)
	}

	t.append(e, vpn, strideA)
	if havePred {
		t.stats.Predictions[pred.Tier]++
	}
	return pred, havePred
}

// match finds the stream this page belongs to: same PID and within
// Δ_stream pages of the stream's most recent VPN; the nearest stream
// wins when several qualify. Returns -1 when no stream matches.
func (t *Trainer) match(pid memsim.PID, vpn memsim.VPN) int {
	best := -1
	var bestDist memsim.Stride = math.MaxInt64
	for i := range t.entries {
		e := &t.entries[i]
		if !e.valid || e.pid != pid {
			continue
		}
		d := memsim.StrideBetween(e.last(), vpn).Abs()
		if d <= memsim.Stride(t.params.DeltaStream) && d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

func (t *Trainer) insert(pid memsim.PID, vpn memsim.VPN) {
	victim := 0
	for i := range t.entries {
		if !t.entries[i].valid {
			victim = i
			break
		}
		if t.entries[i].tick < t.entries[victim].tick {
			victim = i
		}
	}
	e := &t.entries[victim]
	if e.valid {
		t.stats.StreamsEvicted++
	}
	t.nextGen++
	// Reuse the evicted entry's history backing: stream churn on
	// irregular workloads would otherwise allocate two slices per churn.
	vpns, strides := e.vpns[:0], e.strides[:0]
	if cap(vpns) < t.params.HistoryLen {
		vpns = make([]memsim.VPN, 0, t.params.HistoryLen)
		strides = make([]memsim.Stride, 0, t.params.HistoryLen-1)
	}
	*e = sttEntry{
		valid:   true,
		pid:     pid,
		vpns:    append(vpns, vpn),
		strides: strides,
		tick:    t.tick,
		gen:     t.nextGen,
		offset:  t.params.Policy.InitialOffset,
	}
	t.stats.StreamsCreated++
}

func (t *Trainer) append(e *sttEntry, vpn memsim.VPN, strideA memsim.Stride) {
	if len(e.vpns) == t.params.HistoryLen {
		copy(e.vpns, e.vpns[1:])
		e.vpns[len(e.vpns)-1] = vpn
		copy(e.strides, e.strides[1:])
		e.strides[len(e.strides)-1] = strideA
		return
	}
	e.vpns = append(e.vpns, vpn)
	e.strides = append(e.strides, strideA)
}

// predict runs the three-tier cascade (§III-D1): SSP first, LSP when SSP
// finds no dominant stride, RSP as the last resort.
func (t *Trainer) predict(idx int, vpn memsim.VPN, strideA memsim.Stride) (Prediction, bool) {
	e := &t.entries[idx]
	offset := int64(math.Round(e.offset))
	if offset < 1 {
		offset = 1
	}
	k := t.params.Policy.Intensity

	if t.params.EnableSSP {
		if stride, ok := ssp(e.strides, strideA, t.params.HistoryLen); ok {
			if bulk, ok := t.tryBulk(idx, vpn, stride, offset); ok {
				return bulk, true
			}
			return t.build(idx, TierSSP, vpn, int64(stride), offset, k, 0)
		}
	}
	e.streak = 0
	if t.params.EnableLSP {
		if res, ok := lsp(e.vpns, e.strides, strideA); ok {
			return t.build(idx, TierLSP, vpn, int64(res.patternStride), offset, k, int64(res.strideTarget))
		}
	}
	if t.params.EnableRSP {
		if rsp(e.strides, strideA, t.params.HistoryLen, t.params.MaxRippleStride) {
			return t.build(idx, TierRSP, vpn, 1, offset, k, 0)
		}
	}
	return Prediction{}, false
}

// tryBulk decides whether a unit-stride stream has earned a §IV bulk
// request: after Bulk.StreamLength consecutive stride-±1 predictions,
// one request covers the next Bulk.Pages pages; the next bulk arms only
// after the stream passes the current window.
func (t *Trainer) tryBulk(idx int, vpn memsim.VPN, stride memsim.Stride, offset int64) (Prediction, bool) {
	e := &t.entries[idx]
	if !t.params.Bulk.Enable || (stride != 1 && stride != -1) {
		e.streak = 0
		return Prediction{}, false
	}
	e.streak++
	if e.streak < t.params.Bulk.StreamLength {
		return Prediction{}, false
	}
	dir := int64(stride)
	if e.bulkArmed && dir*int64(vpn) < e.bulkFence {
		return Prediction{}, false // previous window not consumed yet
	}
	pages := make([]memsim.VPN, 0, t.params.Bulk.Pages)
	for j := 0; j < t.params.Bulk.Pages; j++ {
		target := int64(vpn) + dir*(offset+int64(j))
		if target <= 0 || target > int64(memsim.MaxVPN) {
			break
		}
		pages = append(pages, memsim.VPN(target))
	}
	if len(pages) < t.params.Bulk.Pages/2 {
		return Prediction{}, false
	}
	e.bulkArmed = true
	e.bulkFence = dir * (int64(vpn) + dir*(offset+int64(len(pages))))
	t.stats.BulkPredictions++
	return Prediction{
		Stream: StreamRef{Index: idx, Gen: e.gen},
		Tier:   TierSSP,
		PID:    e.pid,
		Pages:  pages,
		Bulk:   true,
	}, true
}

// build materializes the prediction pages:
//
//	SSP: VPN_A + (i+j)·stride            (§III-D2)
//	LSP: VPN_A + stride_target + (i+j)·pattern_stride  (Algorithm 1 line 16)
//	RSP: VPN_A + (i+j)·1                 (Algorithm 2 line 12)
//
// where j ∈ [0, Intensity). Pages falling outside the valid VPN range
// are skipped.
func (t *Trainer) build(idx int, tier Tier, vpn memsim.VPN, unit, offset int64, k int, fixed int64) (Prediction, bool) {
	e := &t.entries[idx]
	pages := t.pagesBuf[:0]
	for j := 0; j < k; j++ {
		target := int64(vpn) + fixed + (offset+int64(j))*unit
		if target <= 0 || target > int64(memsim.MaxVPN) {
			continue
		}
		pages = append(pages, memsim.VPN(target))
	}
	t.pagesBuf = pages
	if len(pages) == 0 {
		return Prediction{}, false
	}
	return Prediction{
		Stream: StreamRef{Index: idx, Gen: e.gen},
		Tier:   tier,
		PID:    e.pid,
		Pages:  pages,
	}, true
}

// Feedback applies timeliness feedback to a stream's prefetch offset
// (§III-E): T below T_min means the page barely made it — prefetch
// further ahead (i ← i·(1+α)); T above T_max means it sat idle too long
// — pull in (i ← i·(1−α)).
func (t *Trainer) Feedback(ref StreamRef, lead vclock.Duration) {
	if !t.params.Policy.Adaptive {
		return
	}
	if ref.Index < 0 || ref.Index >= len(t.entries) {
		return
	}
	e := &t.entries[ref.Index]
	if !e.valid || e.gen != ref.Gen {
		return // stream was evicted and the slot reused
	}
	p := t.params.Policy
	switch {
	case lead < p.TMin:
		e.offset *= 1 + p.Alpha
		if e.offset > p.MaxOffset {
			e.offset = p.MaxOffset
		}
		t.stats.OffsetRaises++
	case lead > p.TMax:
		e.offset *= 1 - p.Alpha
		if e.offset < 1 {
			e.offset = 1
		}
		t.stats.OffsetLowers++
	}
}

// OffsetOf exposes a stream's current offset for tests and experiments.
func (t *Trainer) OffsetOf(ref StreamRef) (float64, bool) {
	if ref.Index < 0 || ref.Index >= len(t.entries) {
		return 0, false
	}
	e := &t.entries[ref.Index]
	if !e.valid || e.gen != ref.Gen {
		return 0, false
	}
	return e.offset, true
}

// LiveStreams returns how many STT entries are valid.
func (t *Trainer) LiveStreams() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].valid {
			n++
		}
	}
	return n
}
