package core

import (
	"hopp/internal/flatmap"
	"hopp/internal/memsim"
	"hopp/internal/vclock"
	"hopp/internal/vmm"
)

// Backend is the machine-side contract the execution engine drives: page
// state queries for request deduplication, and the asynchronous remote
// read + early-PTE-injection path.
type Backend interface {
	// PageState classifies a page for deduplication.
	PageState(key memsim.PageKey) vmm.PageState
	// Fetch schedules an RDMA read for the page, issued at now. The
	// machine must inject the PTE when the page arrives and then invoke
	// onInjected with the arrival time. ok is false when the fetch
	// cannot be issued (no remote copy).
	Fetch(now vclock.Time, key memsim.PageKey, onInjected func(arrival vclock.Time)) (ok bool)
	// InjectSwapCached injects the PTE for a page that already sits in
	// the local swapcache (landed there by the demand-path readahead):
	// no RDMA needed, the future fault becomes a DRAM hit. ok is false
	// when the page is no longer swapcached.
	InjectSwapCached(now vclock.Time, key memsim.PageKey) (ok bool)
	// FetchBulk moves all keys with a single transfer (§IV's 2 MB
	// huge-space swap): one request latency amortized over the window.
	// onInjected fires per page as the window lands.
	FetchBulk(now vclock.Time, keys []memsim.PageKey, onInjected func(key memsim.PageKey, arrival vclock.Time)) (ok bool)
}

// ExecStats counts execution engine activity; Hits/Issued is the
// prefetch accuracy of §VI-A.
type ExecStats struct {
	Requested       uint64 // pages requested by the trainer
	SkipResident    uint64 // deduplicated: already mapped or swapcached
	SkipInflight    uint64 // deduplicated: fetch already outstanding
	SkipCold        uint64 // never swapped out; nothing to fetch
	Issued          uint64 // RDMA reads issued
	InjectedInPlace uint64 // PTEs injected for already-swapcached pages
	Arrived         uint64 // pages injected after an RDMA read
	Hits            uint64 // injected pages first-touched by the app
	LateHits        uint64 // demand fault absorbed by an in-flight prefetch
	Evicted         uint64 // injected pages reclaimed before any touch
	BulkRequests    uint64 // §IV huge-space transfers issued

	IssuedByTier [4]uint64
	HitsByTier   [4]uint64

	// LeadSum/LeadCount aggregate timeliness T = firstHit − arrival.
	LeadSum   vclock.Duration
	LeadCount uint64
	// LeadBuckets histograms lead times: <10µs, <40µs (T_min), <100µs,
	// <1ms, <5ms (T_max), ≥5ms.
	LeadBuckets [6]uint64
}

// LeadBucketBounds are the upper bounds of LeadBuckets (the last bucket
// is unbounded).
var LeadBucketBounds = [5]vclock.Duration{
	10 * vclock.Microsecond,
	40 * vclock.Microsecond,
	100 * vclock.Microsecond,
	vclock.Millisecond,
	5 * vclock.Millisecond,
}

func (s *ExecStats) recordLead(lead vclock.Duration) {
	s.LeadSum += lead
	s.LeadCount++
	for i, b := range LeadBucketBounds {
		if lead < b {
			s.LeadBuckets[i]++
			return
		}
	}
	s.LeadBuckets[5]++
}

// Accuracy returns prefetch hits over prefetched pages (§VI-A), counting
// in-place PTE injections as prefetched pages too. Late hits count: the
// page was both prefetched and used.
func (s ExecStats) Accuracy() float64 {
	den := s.Issued + s.InjectedInPlace
	if den == 0 {
		return 0
	}
	return float64(s.Hits+s.LateHits) / float64(den)
}

// MeanLead returns average timeliness.
func (s ExecStats) MeanLead() vclock.Duration {
	if s.LeadCount == 0 {
		return 0
	}
	return s.LeadSum / vclock.Duration(s.LeadCount)
}

type issuedReq struct {
	stream  StreamRef
	tier    Tier
	arrival vclock.Time
	landed  bool
}

// Executor is the prefetch execution engine (§III-F): it deduplicates
// requests, reads pages from remote over RDMA, and injects PTEs as soon
// as pages return. It learns hits from the memory side rather than from
// page faults, so the offset feedback loop keeps working even though
// injected pages never fault.
type Executor struct {
	backend Backend
	algo    Algorithm
	// reqs tracks issued-and-not-yet-consumed prefetches by packed page
	// key. Requests live by value inside the flat map, so the steady
	// state issues and retires them without touching the heap.
	reqs        *flatmap.Map[issuedReq]
	stats       ExecStats
	minBulkFrac float64
}

// NewExecutor wires an executor to its machine backend and the
// algorithm that receives timeliness feedback.
func NewExecutor(backend Backend, algo Algorithm, params Params) *Executor {
	params.fill()
	return &Executor{
		backend:     backend,
		algo:        algo,
		reqs:        flatmap.New[issuedReq](64),
		minBulkFrac: params.Bulk.MinRemoteFrac,
	}
}

// Stats returns a copy of the counters.
func (x *Executor) Stats() ExecStats { return x.stats }

// Outstanding returns how many fetches are in flight or landed-unhit.
func (x *Executor) Outstanding() int { return x.reqs.Len() }

// Submit executes one prediction.
func (x *Executor) Submit(now vclock.Time, pred Prediction) {
	if pred.Bulk {
		x.submitBulk(now, pred)
		return
	}
	for _, vpn := range pred.Pages {
		key := memsim.PageKey{PID: pred.PID, VPN: vpn}
		pk := key.Pack()
		x.stats.Requested++
		if x.reqs.Has(pk) {
			x.stats.SkipInflight++
			continue
		}
		switch x.backend.PageState(key) {
		case vmm.Mapped:
			x.stats.SkipResident++
			continue
		case vmm.SwapCached:
			// The demand path's readahead already brought the page local;
			// injecting its PTE now turns the coming 2.3 µs prefetch-hit
			// into a 0.1 µs DRAM hit — the §VI-E early-injection gain.
			if x.backend.InjectSwapCached(now, key) {
				x.stats.InjectedInPlace++
				x.reqs.Put(pk, issuedReq{stream: pred.Stream, tier: pred.Tier, arrival: now, landed: true})
				x.stats.IssuedByTier[pred.Tier]++
			} else {
				x.stats.SkipResident++
			}
			continue
		case vmm.Untouched:
			// The page has never existed; there is nothing remote to
			// read. (The kernel cannot prefetch a page that was never
			// swapped out.)
			x.stats.SkipCold++
			continue
		}
		ok := x.backend.Fetch(now, key, func(arrival vclock.Time) {
			x.onInjected(pk, arrival)
		})
		if !ok {
			x.stats.SkipCold++
			continue
		}
		x.reqs.Put(pk, issuedReq{stream: pred.Stream, tier: pred.Tier})
		x.stats.Issued++
		x.stats.IssuedByTier[pred.Tier]++
	}
}

// submitBulk executes a §IV huge-space request: if enough of the window
// is actually remote, one transfer moves it all; otherwise the head of
// the window goes through the ordinary per-page path.
func (x *Executor) submitBulk(now vclock.Time, pred Prediction) {
	eligible := make([]memsim.PageKey, 0, len(pred.Pages))
	for _, vpn := range pred.Pages {
		key := memsim.PageKey{PID: pred.PID, VPN: vpn}
		x.stats.Requested++
		if x.reqs.Has(key.Pack()) {
			x.stats.SkipInflight++
			continue
		}
		if x.backend.PageState(key) != vmm.SwappedOut {
			x.stats.SkipResident++
			continue
		}
		eligible = append(eligible, key)
	}
	if float64(len(eligible)) < x.minBulkFrac*float64(len(pred.Pages)) {
		// Too much of the window is already local: degrade to the
		// ordinary path for the nearest page.
		if len(eligible) > 0 {
			single := pred
			single.Bulk = false
			single.Pages = []memsim.VPN{eligible[0].VPN}
			x.Submit(now, single)
		}
		return
	}
	ok := x.backend.FetchBulk(now, eligible, func(key memsim.PageKey, arrival vclock.Time) {
		x.onInjected(key.Pack(), arrival)
	})
	if !ok {
		x.stats.SkipCold += uint64(len(eligible))
		return
	}
	for _, key := range eligible {
		x.reqs.Put(key.Pack(), issuedReq{stream: pred.Stream, tier: pred.Tier})
		x.stats.Issued++
		x.stats.IssuedByTier[pred.Tier]++
	}
	x.stats.BulkRequests++
}

func (x *Executor) onInjected(pk uint64, arrival vclock.Time) {
	req := x.reqs.Ptr(pk)
	if req == nil {
		return // already consumed as a late hit
	}
	req.landed = true
	req.arrival = arrival
	x.stats.Arrived++
}

// Inflight reports whether a fetch for key is outstanding (issued, not
// yet landed). The machine — which scheduled the injection event and
// knows its arrival time — uses this to let a demand fault wait on the
// in-flight prefetch instead of issuing a duplicate read.
func (x *Executor) Inflight(key memsim.PageKey) bool {
	req, ok := x.reqs.Get(key.Pack())
	return ok && !req.landed
}

// NoteLateHit records that a demand fault waited on an in-flight
// prefetch. The page was useful but late: feedback pushes the offset out.
func (x *Executor) NoteLateHit(key memsim.PageKey, now vclock.Time) {
	pk := key.Pack()
	req, ok := x.reqs.Get(pk)
	if !ok {
		return
	}
	x.stats.LateHits++
	x.stats.HitsByTier[req.tier]++
	// Lead time is ≤ 0: the page had not arrived when it was needed.
	x.algo.Feedback(req.stream, 0)
	x.reqs.Delete(pk)
}

// OnFirstHit records the first touch of an injected page: the prefetch
// paid off as a pure DRAM hit. Lead time feeds the offset controller.
func (x *Executor) OnFirstHit(key memsim.PageKey, now vclock.Time) {
	pk := key.Pack()
	req, ok := x.reqs.Get(pk)
	if !ok || !req.landed {
		return
	}
	lead := now.Sub(req.arrival)
	x.stats.Hits++
	x.stats.HitsByTier[req.tier]++
	x.stats.recordLead(lead)
	x.algo.Feedback(req.stream, lead)
	x.reqs.Delete(pk)
}

// OnEvicted records that a prefetched, injected page was reclaimed
// before ever being touched — the §II-C pollution cost of inaccurate
// early PTE injection. An unused eviction is the strongest "fetched too
// far ahead" signal there is, so it feeds the offset controller as an
// over-early arrival; without this, offsets would only ever ratchet up
// (late hits raise them, and wasted fetches would stay silent).
func (x *Executor) OnEvicted(key memsim.PageKey) {
	pk := key.Pack()
	req, ok := x.reqs.Get(pk)
	if !ok || !req.landed {
		return
	}
	x.stats.Evicted++
	x.algo.Feedback(req.stream, overEarlyLead)
	x.reqs.Delete(pk)
}

// overEarlyLead is a lead time guaranteed to exceed any sane TMax,
// signalling "pull the offset in".
const overEarlyLead = vclock.Duration(1 << 62)

// IsPrefetched reports whether key is a landed, not-yet-hit prefetch.
func (x *Executor) IsPrefetched(key memsim.PageKey) bool {
	req, ok := x.reqs.Get(key.Pack())
	return ok && req.landed
}

// Prefetcher bundles the prediction algorithm and executor: HoPP's
// complete software data plane. The machine drains the MC's hot page
// area into OnHotPage.
type Prefetcher struct {
	// Trainer is the three-tier cascade, nil when an alternative
	// Algorithm is configured.
	Trainer *Trainer
	// Algo is the active prediction algorithm.
	Algo Algorithm
	Exec *Executor

	// Hot-recency tracking for §IV trace-informed eviction.
	hotSeq    uint64
	hotLast   *flatmap.Map[uint64]
	hotWindow uint64

	sharedDropped uint64
}

// NewPrefetcher builds the full software stack over a machine backend,
// selecting the prediction algorithm from Params.Algorithm.
func NewPrefetcher(params Params, backend Backend) *Prefetcher {
	params.fill()
	var algo Algorithm
	var tr *Trainer
	switch params.Algorithm {
	case "", AlgoThreeTier:
		tr = NewTrainer(params)
		algo = tr
	case AlgoMarkov:
		algo = NewMarkov(params)
	default:
		tr = NewTrainer(params)
		algo = tr
	}
	return &Prefetcher{
		Trainer:   tr,
		Algo:      algo,
		Exec:      NewExecutor(backend, algo, params),
		hotLast:   flatmap.New[uint64](256),
		hotWindow: uint64(params.EvictionWindow),
	}
}

// OnHotPage feeds one hot page record (already filtered to Mapped
// records) through training and executes any resulting prediction.
// shared carries the RPT shared-page flag.
func (p *Prefetcher) OnHotPage(now vclock.Time, pid memsim.PID, vpn memsim.VPN, shared bool) {
	p.hotSeq++
	key := memsim.PageKey{PID: pid, VPN: vpn}
	p.hotLast.Put(key.Pack(), p.hotSeq)
	if uint64(p.hotLast.Len()) > 4*p.hotWindow {
		p.pruneHot()
	}
	if shared && p.dropShared() {
		p.sharedDropped++
		return
	}
	if pred, ok := p.Algo.Observe(now, pid, vpn); ok {
		p.Exec.Submit(now, pred)
	}
}

func (p *Prefetcher) dropShared() bool {
	if p.Trainer != nil {
		return p.Trainer.Params().DropShared
	}
	if m, ok := p.Algo.(*Markov); ok {
		return m.params.DropShared
	}
	return false
}

// SharedDropped returns how many hot pages the DropShared policy
// filtered out.
func (p *Prefetcher) SharedDropped() uint64 { return p.sharedDropped }

func (p *Prefetcher) pruneHot() {
	p.hotLast.RangeDelete(func(_ uint64, seq uint64) bool {
		return p.hotSeq-seq <= p.hotWindow
	})
}

// RecentlyHot reports whether the page was among the last
// EvictionWindow hot page records — the §IV eviction advisor.
func (p *Prefetcher) RecentlyHot(key memsim.PageKey) bool {
	seq, ok := p.hotLast.Get(key.Pack())
	return ok && p.hotSeq-seq <= p.hotWindow
}
