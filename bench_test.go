package hopp

// One benchmark per table and figure of the paper's evaluation (§VI).
// Each iteration regenerates the experiment end-to-end at quick scale;
// `go test -bench=. -benchmem` therefore exercises the entire system —
// workload generation, cache simulation, the MC hardware models, the
// kernel substrate, all prefetchers, and the metric pipeline — while
// timing how long each reproduction costs.
//
// Reported custom metrics surface each experiment's headline number so
// a bench run doubles as a regression check on the paper's shapes.

import (
	"context"
	"io"
	"testing"

	"hopp/internal/experiments"
	"hopp/internal/sim"
	"hopp/internal/workload"
)

// benchOpts is the standard bench-scale configuration.
func benchOpts() experiments.Options {
	return experiments.Options{Seed: 1, Quick: true}
}

// runExp benchmarks one experiment regenerator.
func runExp(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range tables {
			t.Fprint(io.Discard)
		}
	}
}

func BenchmarkTable2_HPDThreshold(b *testing.B)   { runExp(b, "table2") }
func BenchmarkTable3_RPTCache(b *testing.B)       { runExp(b, "table3") }
func BenchmarkTable4_Inventory(b *testing.B)      { runExp(b, "table4") }
func BenchmarkTable5_Bandwidth(b *testing.B)      { runExp(b, "table5") }
func BenchmarkFig1_LeapInterference(b *testing.B) { runExp(b, "fig1") }
func BenchmarkFig2_LadderPattern(b *testing.B)    { runExp(b, "fig2") }
func BenchmarkFig3_RipplePattern(b *testing.B)    { runExp(b, "fig3") }
func BenchmarkFig9_NonJVM(b *testing.B)           { runExp(b, "fig9") }
func BenchmarkFig10_AccuracyNonJVM(b *testing.B)  { runExp(b, "fig10") }
func BenchmarkFig11_CoverageNonJVM(b *testing.B)  { runExp(b, "fig11") }
func BenchmarkFig12_Spark(b *testing.B)           { runExp(b, "fig12") }
func BenchmarkFig13_AccuracySpark(b *testing.B)   { runExp(b, "fig13") }
func BenchmarkFig14_CoverageSpark(b *testing.B)   { runExp(b, "fig14") }
func BenchmarkFig15_MultiApp(b *testing.B)        { runExp(b, "fig15") }
func BenchmarkFig16_DepthN(b *testing.B)          { runExp(b, "fig16") }
func BenchmarkFig17_RemoteAccesses(b *testing.B)  { runExp(b, "fig17") }
func BenchmarkFig18_TierAblation(b *testing.B)    { runExp(b, "fig18") }
func BenchmarkFig19_TierAccuracy(b *testing.B)    { runExp(b, "fig19") }
func BenchmarkFig20_TierCoverage(b *testing.B)    { runExp(b, "fig20") }
func BenchmarkFig21_Scatter(b *testing.B)         { runExp(b, "fig21") }
func BenchmarkFig22_Techniques(b *testing.B)      { runExp(b, "fig22") }
func BenchmarkBaselines_Feedback(b *testing.B)    { runExp(b, "baselines") }

// BenchmarkHeadline measures the paper's headline comparison directly —
// OMP-KMeans at 50% local memory under Fastswap vs HoPP — and reports
// the normalized-performance metrics alongside ns/op.
func BenchmarkHeadline(b *testing.B) {
	gen := workload.NewOMPKMeans(768, 3)
	var hoppNorm, fastNorm float64
	for i := 0; i < b.N; i++ {
		cmp, err := sim.Compare(gen, 0.5, 1, sim.Fastswap(), sim.HoPP())
		if err != nil {
			b.Fatal(err)
		}
		fastNorm = cmp.Normalized(0)
		hoppNorm = cmp.Normalized(1)
	}
	b.ReportMetric(hoppNorm, "hopp-normperf")
	b.ReportMetric(fastNorm, "fastswap-normperf")
}

// BenchmarkMachineThroughput measures raw simulation speed in
// accesses/second — the cost of the whole per-access pipeline.
func BenchmarkMachineThroughput(b *testing.B) {
	gen := workload.NewSequential(1024, 3)
	b.ReportAllocs()
	var accesses uint64
	for i := 0; i < b.N; i++ {
		met, err := sim.RunWorkload(sim.HoPP(), gen, 0.5, 1)
		if err != nil {
			b.Fatal(err)
		}
		accesses = met.Accesses
	}
	b.ReportMetric(float64(accesses)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Maccess/s")
}

// BenchmarkMachineThroughputSPP is the same pipeline under the SPP
// feedback scheme: every fault crosses the registry-built prefetcher
// plus the OnPrefetchHit/OnPrefetchEvicted seams, so this is the
// regression guard for the feedback path's zero-alloc budget.
func BenchmarkMachineThroughputSPP(b *testing.B) {
	gen := workload.NewSequential(1024, 3)
	b.ReportAllocs()
	var accesses uint64
	for i := 0; i < b.N; i++ {
		met, err := sim.RunWorkload(sim.SPP(), gen, 0.5, 1)
		if err != nil {
			b.Fatal(err)
		}
		accesses = met.Accesses
	}
	b.ReportMetric(float64(accesses)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Maccess/s")
}
