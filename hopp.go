// Package hopp is a full-system reproduction of HoPP — "HoPP:
// Hardware-Software Co-Designed Page Prefetching for Disaggregated
// Memory" (HPCA 2023) — as a deterministic discrete-event simulation.
//
// The package is the public facade over the implementation packages:
//
//   - the memory-controller hardware (hot page detection, reverse page
//     table cache) in internal/hpd, internal/rpt, internal/mc;
//   - the kernel substrate (page tables, swapcache, cgroups, reclaim,
//     the §II-A cost model) in internal/vmm;
//   - the RDMA fabric and remote memory node in internal/rdma;
//   - HoPP's software stack (stream training table, SSP/LSP/RSP tiers,
//     policy engine, execution engine) in internal/core;
//   - the compared demand-path prefetchers (Fastswap, Leap, Depth-N,
//     VMA, SPP, Chimera, HHP) and their self-registering catalog in
//     internal/prefetch;
//   - Table IV workload generators in internal/workload;
//   - the machine that ties them together in internal/sim; and
//   - regenerators for every table and figure of §VI in
//     internal/experiments.
//
// # Quick start
//
//	gen := hopp.Workloads.OMPKMeans(4096, 3)
//	cmp, err := hopp.Compare(gen, 0.5, 1, hopp.Fastswap(), hopp.HoPP())
//	if err != nil { ... }
//	fmt.Println(cmp.Results[1].Coverage())   // HoPP's prefetch coverage
//	fmt.Println(cmp.Normalized(1))           // CT_local / CT_HoPP
package hopp

import (
	"context"
	"io"
	"net/http"

	"hopp/internal/core"
	"hopp/internal/experiments"
	"hopp/internal/service"
	"hopp/internal/sim"
	"hopp/internal/workload"
)

// Re-exported simulation types. See the internal packages for full
// documentation.
type (
	// System describes one remote-memory system under test.
	System = sim.System
	// Config parameterizes a Machine.
	Config = sim.Config
	// Machine is one simulated compute node plus its remote memory node.
	Machine = sim.Machine
	// Metrics aggregates one run's outcomes (§VI-A definitions).
	Metrics = sim.Metrics
	// Comparison holds one workload's results across systems.
	Comparison = sim.Comparison
	// Workload is a memory access pattern generator.
	Workload = workload.Generator
	// Params configures HoPP's software stack (STT, tiers, policy).
	Params = core.Params
	// PolicyParams are the policy engine knobs (§III-E).
	PolicyParams = core.PolicyParams
)

// Systems under test.
var (
	// Fastswap is the readahead-based kernel baseline [7].
	Fastswap = sim.Fastswap
	// Leap is majority-stride prefetching [38].
	Leap = sim.Leap
	// DepthN is fixed-depth early-PTE-injection prefetching [9].
	DepthN = sim.DepthN
	// VMA is Linux 5.4's VMA-clipped readahead.
	VMA = sim.VMA
	// SPP is signature-path prefetching with feedback-trained confidence.
	SPP = sim.SPP
	// Chimera is the accuracy-arbitrated stride/spatial/history hybrid.
	Chimera = sim.Chimera
	// HHP is offset pattern-table prefetching keyed by region triggers.
	HHP = sim.HHP
	// NoPrefetch is the demand-only baseline.
	NoPrefetch = sim.NoPrefetch
	// HoPP is the full co-designed system with default parameters.
	HoPP = sim.HoPP
	// HoPPWith is HoPP with explicit core parameters.
	HoPPWith = sim.HoPPWith
	// DemandSystem resolves any prefetch-registry spec — "spp",
	// "depth-16", "chimera?degree=4" — to a runnable demand-path system;
	// the named constructors above are fixed points of it.
	DemandSystem = sim.DemandSystem
)

// DefaultParams returns the paper's HoPP configuration (§III).
func DefaultParams() Params { return core.DefaultParams() }

// NewMachine builds a machine running the given workloads under
// cfg.System.
func NewMachine(cfg Config, gens ...Workload) (*Machine, error) {
	return sim.New(cfg, gens...)
}

// Run executes one workload under one system with the cgroup limited to
// frac of the workload footprint (0 = all local).
func Run(sys System, gen Workload, frac float64, seed int64) (Metrics, error) {
	return sim.RunWorkload(sys, gen, frac, seed)
}

// RunContext is Run honoring cancellation and deadlines: when ctx is
// done the simulation aborts at its next poll and returns ctx.Err()
// alongside partial metrics.
func RunContext(ctx context.Context, sys System, gen Workload, frac float64, seed int64) (Metrics, error) {
	return sim.RunWorkloadContext(ctx, sys, gen, frac, seed)
}

// Compare runs the workload locally and under every given system.
func Compare(gen Workload, frac float64, seed int64, systems ...System) (Comparison, error) {
	return sim.Compare(gen, frac, seed, systems...)
}

// workloadSet groups the workload constructors under one name.
type workloadSet struct{}

// Workloads exposes every access-pattern generator of the evaluation.
var Workloads workloadSet

// Sequential scans a region `loops` times.
func (workloadSet) Sequential(pages, loops int) Workload { return workload.NewSequential(pages, loops) }

// Strided scans a region with a fixed page stride.
func (workloadSet) Strided(pages int, stride int64, loops int) Workload {
	return workload.NewStrided(pages, stride, loops)
}

// Intertwined is the Fig. 1 two-stream interference pattern.
func (workloadSet) Intertwined(pagesPerStream int, interferenceFrac float64) Workload {
	return workload.NewIntertwined(pagesPerStream, interferenceFrac)
}

// Ladder is the Fig. 2 pattern.
func (workloadSet) Ladder(treads, loops int) Workload { return workload.NewLadder(treads, loops) }

// Ripple is the Fig. 3 pattern.
func (workloadSet) Ripple(pages, loops int) Workload { return workload.NewRipple(pages, loops) }

// AddUp is the §VI-E two-thread microbenchmark.
func (workloadSet) AddUp(threads, pagesPerThread int) Workload {
	return workload.NewAddUp(threads, pagesPerThread)
}

// OMPKMeans is the C/OpenMP K-means of Table IV.
func (workloadSet) OMPKMeans(pages, iterations int) Workload {
	return workload.NewOMPKMeans(pages, iterations)
}

// Quicksort is Table IV's quicksort.
func (workloadSet) Quicksort(pages int) Workload { return workload.NewQuicksort(pages) }

// HPL is High Performance Linpack.
func (workloadSet) HPL(cols, colPages int) Workload { return workload.NewHPL(cols, colPages) }

// NPBCG is the NAS conjugate-gradient kernel.
func (workloadSet) NPBCG(pages, iterations int) Workload { return workload.NewNPBCG(pages, iterations) }

// NPBFT is the NAS FFT kernel.
func (workloadSet) NPBFT(pages int) Workload { return workload.NewNPBFT(pages) }

// NPBLU is the NAS LU solver.
func (workloadSet) NPBLU(planes, planePages, iterations int) Workload {
	return workload.NewNPBLU(planes, planePages, iterations)
}

// NPBMG is the NAS multigrid kernel.
func (workloadSet) NPBMG(pages, cycles int) Workload { return workload.NewNPBMG(pages, cycles) }

// NPBIS is the NAS integer sort.
func (workloadSet) NPBIS(pages int) Workload { return workload.NewNPBIS(pages) }

// GraphX is a GraphX-on-Spark algorithm: "BFS", "CC", "PR" or "LP".
func (workloadSet) GraphX(algo string, edgePages int) Workload {
	return workload.NewGraphX(algo, edgePages)
}

// SparkKMeans is K-means on Spark.
func (workloadSet) SparkKMeans(pages int) Workload { return workload.NewSparkKMeans(pages) }

// SparkBayes is naive Bayes on Spark.
func (workloadSet) SparkBayes(pages int) Workload { return workload.NewSparkBayes(pages) }

// Random is the unprefetchable floor.
func (workloadSet) Random(pages, touches int) Workload { return workload.NewRandom(pages, touches) }

// Experiment regenerates one table or figure of the paper.
type Experiment = experiments.Experiment

// ExperimentOptions tunes experiment scale.
type ExperimentOptions = experiments.Options

// Experiments returns every table/figure regenerator in paper order.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID looks an experiment up ("table2" … "fig22").
func ExperimentByID(id string) (Experiment, bool) { return experiments.ByID(id) }

// RunExperiment executes one experiment and renders its tables to w.
func RunExperiment(id string, opts ExperimentOptions, w io.Writer) error {
	return RunExperimentContext(context.Background(), id, opts, w)
}

// RunExperimentContext is RunExperiment honoring cancellation: the
// first simulation to observe a done ctx fails the experiment with
// ctx.Err().
func RunExperimentContext(ctx context.Context, id string, opts ExperimentOptions, w io.Writer) error {
	e, ok := experiments.ByID(id)
	if !ok {
		return &UnknownExperimentError{ID: id}
	}
	tables, err := e.Run(ctx, opts)
	if err != nil {
		return err
	}
	for _, t := range tables {
		t.Fprint(w)
	}
	return nil
}

// UnknownExperimentError reports a bad experiment ID.
type UnknownExperimentError struct{ ID string }

func (e *UnknownExperimentError) Error() string {
	return "hopp: unknown experiment " + e.ID + " (run `hoppexp -list`)"
}

// Simulation-as-a-service types, re-exported from internal/service.
// An Engine is the long-lived substrate behind cmd/hoppd: every
// submission — a workload × system simulation or an experiment
// regeneration — is one Job in a shared lifecycle, queued into a
// bounded worker pool, cached in an LRU keyed by the canonicalized
// request, and accounted per kind in the runtime counters.
type (
	// Engine serves jobs: Submit, SubmitExperiment, Status, Wait,
	// Cancel, RunExperiment, Metrics, Shutdown.
	Engine = service.Engine
	// EngineOptions sizes the engine's pool, cache, and retention.
	EngineOptions = service.Options
	// RunRequest is one workload × system submission.
	RunRequest = service.RunRequest
	// ServiceExperimentRequest is one experiment-regeneration submission.
	ServiceExperimentRequest = service.ExperimentRequest
	// RunStatus is a job's externally visible snapshot.
	RunStatus = service.RunStatus
	// JobKind tags a job "sim" or "experiment".
	JobKind = service.JobKind
	// JobState is a job's lifecycle state.
	JobState = service.JobState
	// JobCounters are one kind's lifecycle counters in EngineMetrics.
	JobCounters = service.JobCounters
	// EngineMetrics is the /metrics counter snapshot.
	EngineMetrics = service.MetricsSnapshot
)

// NewEngine starts a simulation service engine; callers must Close it.
func NewEngine(opts EngineOptions) *Engine { return service.NewEngine(opts) }

// NewServiceHandler exposes an engine over HTTP (the cmd/hoppd API).
func NewServiceHandler(e *Engine) http.Handler { return service.NewHandler(e) }

// ServiceWorkloads lists the run-catalog workload names an Engine (and
// cmd/hoppsim) accepts; ServiceSystems lists the system names.
func ServiceWorkloads() []string { return service.WorkloadNames() }

// ServiceSystems lists the run-catalog system names.
func ServiceSystems() []string { return service.SystemNames() }
