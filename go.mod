module hopp

go 1.22
