#!/bin/sh
# Quick pre-merge check: static analysis plus race-mode tests over the
# concurrent subsystems (the service engine and the simulator it drives).
# The full tier-1 gate remains `go build ./... && go test ./...`.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go test -race (service + sim, quick mode)"
go test -race -count=1 ./internal/service/... ./internal/sim/...

echo "check.sh: OK"
