#!/bin/sh
# Quick pre-merge check: static analysis plus race-mode tests over the
# concurrent subsystems (the service engine, the simulator it drives,
# and the workload generators shared across runs).
# The full tier-1 gate remains `go build ./... && go test ./...`.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

# copylocks explicitly as a hard gate (a copied sync.Mutex in the
# service layer silently breaks every bound this code enforces). shadow
# is not a built-in vet analyzer: in CI the workflow installs it and a
# missing tool is a hard failure (a broken install step must not
# silently drop the check); locally it stays best-effort so the script
# has no dependency the toolchain doesn't ship.
echo "== go vet -copylocks ./..."
go vet -copylocks ./...
if shadow_tool=$(command -v shadow 2>/dev/null); then
    echo "== go vet -vettool=shadow ./..."
    go vet -vettool="$shadow_tool" ./...
elif [ "${CI:-}" = "true" ]; then
    echo "ERROR: CI=true but shadow analyzer is not installed; the workflow's install step is broken" >&2
    exit 1
else
    echo "WARN: shadow analyzer not installed; shadow check skipped (copylocks gated above)"
fi

# hopplint is a hard gate: the repo's determinism invariants (no wall
# clock / unseeded rand / env reads in deterministic packages, no
# unsorted map ranges on output paths, ctx-first signatures, no silently
# dropped errors, no hot-path allocations, no blocking under locks) are
# enforced, not aspirational. The call-graph build makes it the slowest
# analysis step, so its wall time is printed and a slow run warns —
# above 30s it is eating the pre-merge loop and needs attention.
echo "== hopplint ./..."
hopplint_start=$(date +%s)
go run ./cmd/hopplint ./...
hopplint_elapsed=$(( $(date +%s) - hopplint_start ))
echo "hopplint took ${hopplint_elapsed}s"
if [ "$hopplint_elapsed" -gt 30 ]; then
    echo "WARN: hopplint took ${hopplint_elapsed}s (>30s); profile the loader or trim the module before this becomes the bottleneck"
fi

# internal/faults rides in the race gate alongside the service layer:
# the fault-injection tests (contained panics, journal write failures,
# gated slow runs) are exactly the paths where a data race would hide.
# The service package includes the sweep fan-out suite (shared frozen
# streams, in-flight dedupe, mid-sweep replay, stalled NDJSON clients) —
# the heaviest cross-goroutine surface in the repo. internal/prefetch
# rides along because its schemes run inside pool workers and its
# registry is read from every normalization path. internal/hmtt rides
# along because its streaming decoder is fed from ingest pump
# goroutines and its state snapshots cross the journal-replay boundary.
echo "== go test -race (service + faults + sim + workload + prefetch + hmtt, quick mode)"
go test -race -count=1 ./internal/service/... ./internal/faults/... ./internal/sim/... ./internal/workload/... ./internal/prefetch/... ./internal/hmtt/...

echo "check.sh: OK"
