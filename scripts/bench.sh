#!/bin/sh
# Hot-loop benchmark snapshot: the three numbers that catch a
# performance regression in the paths everything else rides on —
#
#   machine_maccess_per_s   raw per-access simulation throughput
#   spp_maccess_per_s       the same loop under the SPP feedback scheme
#                           (fault path + feedback seams)
#   table2_ns_per_op        one full experiment regeneration (quick)
#   sweep_speedup           one 8-point sweep vs the same 8 points as
#                           individual runs (shared-stream win)
#
# Results land in BENCH_hotloop.json at the repo root. The committed
# copy is the baseline; rerun after touching the simulator hot loop,
# the experiment pipeline, or the sweep fan-out, and eyeball the diff.
#
# The script always prints a comparison of machine_maccess_per_s
# against the committed baseline. With BENCH_STRICT=1 it additionally
# FAILS (exit 1) when throughput regresses more than 10% — the CI
# guardrail. Benchmarks time wall clocks, so numbers move machine to
# machine; the strict gate is deliberately loose (10%) to absorb
# shared-runner noise while still catching an accidental O(ways) scan
# or per-access allocation creeping back in.
set -eu
cd "$(dirname "$0")/.."

out=BENCH_hotloop.json
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

# Capture the committed baseline before overwriting it.
base_maccess=""
base_spp=""
if [ -f "$out" ]; then
    base_maccess=$(awk -F'[:,]' '/"machine_maccess_per_s"/ { gsub(/ /, "", $2); print $2 }' "$out")
    base_spp=$(awk -F'[:,]' '/"spp_maccess_per_s"/ { gsub(/ /, "", $2); print $2 }' "$out")
fi

echo "== go test -bench (hot loop: machine + table2)"
go test -bench 'MachineThroughput|Table2_HPDThreshold' -run '^$' -benchtime 3x . | tee "$tmp"

echo "== go test -bench (sweep vs individual)"
go test -bench 'SweepVsIndividual' -run '^$' -benchtime 3x ./internal/service/ | tee -a "$tmp"

awk '
# The SPP stanza must come first with next: awk patterns are prefix
# regexes, so /^BenchmarkMachineThroughput/ would also match the SPP
# benchmark line and clobber the base number.
/^BenchmarkMachineThroughputSPP/ {
    for (i = 1; i <= NF; i++) if ($i == "Maccess/s") spp = $(i - 1)
    next
}
/^BenchmarkMachineThroughput/ {
    for (i = 1; i <= NF; i++) if ($i == "Maccess/s") maccess = $(i - 1)
}
/^BenchmarkTable2_HPDThreshold/ {
    for (i = 1; i <= NF; i++) if ($i == "ns/op") table2 = $(i - 1)
}
/^BenchmarkSweepVsIndividual/ {
    for (i = 1; i <= NF; i++) {
        if ($i == "speedup") speedup = $(i - 1)
        if ($i == "sweep-ns/grid") sweep = $(i - 1)
        if ($i == "individual-ns/grid") indiv = $(i - 1)
    }
}
END {
    if (maccess == "" || spp == "" || table2 == "" || speedup == "") {
        print "bench.sh: missing benchmark output" > "/dev/stderr"
        exit 1
    }
    printf "{\n"
    printf "  \"machine_maccess_per_s\": %s,\n", maccess
    printf "  \"spp_maccess_per_s\": %s,\n", spp
    printf "  \"table2_ns_per_op\": %s,\n", table2
    printf "  \"sweep_speedup\": %s,\n", speedup
    printf "  \"sweep_ns_per_grid\": %s,\n", sweep
    printf "  \"individual_ns_per_grid\": %s\n", indiv
    printf "}\n"
}' "$tmp" > "$out"

echo "bench.sh: wrote $out"
cat "$out"

# compare_metric NAME BASELINE NEW applies the 10% regression gate to
# one throughput number; BENCH_STRICT=1 turns a breach fatal.
compare_metric() {
    name=$1 base=$2 new=$3
    if [ -z "$base" ]; then
        echo "bench.sh: no committed $name baseline to compare against"
        return 0
    fi
    echo "bench.sh: $name $base (baseline) -> $new"
    if ! awk -v new="$new" -v base="$base" \
        'BEGIN { exit (new + 0 >= 0.9 * base) ? 0 : 1 }'; then
        echo "bench.sh: $name regressed more than 10% from the committed baseline"
        if [ "${BENCH_STRICT:-0}" = "1" ]; then
            echo "bench.sh: BENCH_STRICT=1, failing"
            exit 1
        fi
        echo "bench.sh: (set BENCH_STRICT=1 to make this fatal)"
    fi
}

new_maccess=$(awk -F'[:,]' '/"machine_maccess_per_s"/ { gsub(/ /, "", $2); print $2 }' "$out")
new_spp=$(awk -F'[:,]' '/"spp_maccess_per_s"/ { gsub(/ /, "", $2); print $2 }' "$out")
compare_metric machine_maccess_per_s "$base_maccess" "$new_maccess"
compare_metric spp_maccess_per_s "$base_spp" "$new_spp"
