# Convenience targets; the authoritative commands live in ROADMAP.md
# (tier-1) and scripts/check.sh (quick race-mode gate).

.PHONY: build test check

build:
	go build ./...

test: build
	go test ./...

check:
	sh scripts/check.sh
