# Convenience targets; the authoritative commands live in ROADMAP.md
# (tier-1) and scripts/check.sh (quick race-mode gate).

.PHONY: build test check lint loadcheck bench

build:
	go build ./...

test: build
	go test ./...

# Repo-specific determinism lint (nodeterm, maporder, ctxfirst,
# errdrop); also runs inside `make check`.
lint:
	go run ./cmd/hopplint ./...

check:
	sh scripts/check.sh

# Race-mode pass over the resource-limit surface: sustained-load leak
# regression, queue backpressure (429), registry eviction (404),
# per-run timeouts, and sweep fan-out fairness (a giant sweep holding
# only its paced window while other clients' single runs progress).
loadcheck:
	go test -race -count=1 -v -run 'SustainedLoad|Overload|Backpressure|Evict|Timeout|429|404|Fairness|Sweep' ./internal/service/

# Hot-loop benchmark snapshot into BENCH_hotloop.json (simulator
# throughput, one experiment regeneration, sweep-vs-individual). The
# committed file is the baseline to diff against.
bench:
	sh scripts/bench.sh
